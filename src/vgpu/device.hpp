// Virtual-GPU device: functional kernel execution + roofline time accounting.
//
// Mirrors the CUDA host programming model the paper's implementation uses:
// buffers live in a distinct device address space, data moves via explicit
// copies, and work is submitted as kernels over a grid of blocks of threads.
// Execution is performed on the host (optionally across a thread pool), and
// simulated time for each launch/copy is charged against the device's
// MachineModel. Launches are issued from one thread (like a CUDA stream), so
// stats need no synchronization.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "metrics/metrics.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"
#include "vgpu/check/check.hpp"
#include "vgpu/machine_model.hpp"
#include "vgpu/thread_pool.hpp"

namespace gs::record {
class Recorder;  // decision-log recorder (record/record.hpp); pointer only
}

namespace gs::vgpu {

/// Work declaration for one kernel launch: totals across all threads.
/// `scalar_bytes` selects the arithmetic roofline (4 = float, 8 = double).
struct KernelCost {
  double flops = 0.0;
  double bytes = 0.0;
  std::size_t scalar_bytes = 8;
};

/// Per-kernel aggregate, keyed by kernel name (the rows of the Tab.1
/// breakdown). Accumulated across every launch of that name since the last
/// Device::reset_stats().
struct KernelRecord {
  std::size_t launches = 0;  ///< number of launches under this name
  double sim_seconds = 0.0;  ///< modelled time incl. per-launch overhead
  double flops = 0.0;        ///< total declared floating-point operations
  double bytes = 0.0;        ///< total declared DRAM traffic
};

/// Everything the device has been charged for since the last reset: the
/// end-of-solve aggregate view of the same accounting stream that the
/// trace layer (OBSERVABILITY.md) exposes per event. Invariants when a
/// trace sink is attached: the "kernel" slices in the trace sum to
/// `kernel_seconds`, the "transfer" slices to `transfer_seconds()`, and
/// together they tile `sim_seconds()` exactly.
struct DeviceStats {
  std::size_t kernel_launches = 0;  ///< total kernel launches
  double kernel_seconds = 0.0;      ///< modelled kernel time incl. launch overhead

  std::size_t h2d_count = 0, d2h_count = 0;  ///< PCIe copy operations
  std::size_t h2d_bytes = 0, d2h_bytes = 0;  ///< PCIe bytes moved
  double h2d_seconds = 0.0, d2h_seconds = 0.0;  ///< modelled PCIe time

  double total_flops = 0.0;  ///< declared flops across all kernels
  double total_bytes = 0.0;  ///< declared DRAM bytes across all kernels

  /// Per-kernel-name aggregates (ordered; heterogeneous lookup enabled).
  std::map<std::string, KernelRecord, std::less<>> per_kernel;

  /// Total simulated seconds attributed to this device (kernels + PCIe).
  [[nodiscard]] double sim_seconds() const noexcept {
    return kernel_seconds + h2d_seconds + d2h_seconds;
  }
  /// Modelled PCIe time, both directions.
  [[nodiscard]] double transfer_seconds() const noexcept {
    return h2d_seconds + d2h_seconds;
  }
};

/// One virtual device. A host CPU is modelled the same way with a
/// MachineModel that has zero launch overhead and no interconnect.
class Device {
 public:
  /// `workers == 0` uses hardware concurrency for functional execution.
  explicit Device(MachineModel model, std::size_t workers = 1)
      : model_(std::move(model)), pool_(workers) {}

  [[nodiscard]] const MachineModel& model() const noexcept { return model_; }
  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = DeviceStats{}; }

  /// Attach (or with nullptr detach) a trace sink. While attached, every
  /// kernel launch and PCIe copy is emitted as a complete slice on the
  /// (pid, tid) track, timestamped on this device's simulated clock — the
  /// slices tile sim_seconds() exactly, so their per-category totals equal
  /// the DeviceStats aggregates. Detached (the default) costs one branch
  /// per launch/copy.
  void set_trace(trace::TraceSink* sink, std::uint32_t pid = trace::kDevicePid,
                 std::uint32_t tid = trace::kEngineTid) {
    trace_ = trace::Track(sink, pid, tid);
    if (trace_.enabled()) trace_.name_process("vgpu: " + model_.name);
  }

  /// The track kernels/copies are emitted on; engines reuse it for their
  /// own algorithm-phase spans so everything nests on one timeline.
  [[nodiscard]] const trace::Track& trace() const noexcept { return trace_; }

  /// Attach (or with nullptr detach) a kernel-safety checker (CHECKING.md).
  /// While attached, spans handed out by DeviceBuffer::device_span()
  /// record per-block access footprints and every launch is analysed for
  /// cross-block races, out-of-bounds indexing, NaN introduction, and
  /// cost-declaration drift. Detached (the default) checking costs one
  /// branch per launch and one per element access — results and stats are
  /// bit-identical either way, the same guarantee the trace sink gives.
  void set_checker(check::Checker* checker) {
    GS_CHECK_MSG(checker == nullptr || capture_ == nullptr,
                 "checker and capture sink are mutually exclusive");
    check_ = checker;
  }

  /// The attached checker, or nullptr.
  [[nodiscard]] check::Checker* checker() const noexcept { return check_; }

  /// Attach (or with nullptr detach) a static-analysis capture sink
  /// (CHECKING.md, "Static analysis"). While attached, every launch,
  /// buffer alloc/free, and PCIe transfer is recorded as a node with its
  /// footprint for offline launch-graph analysis (src/vgpu/analyze).
  /// Mutually exclusive with the checker — both consume the same access
  /// stream and at most one sink is consulted per event. Detached (the
  /// default) capture costs one pointer test per launch/copy and changes
  /// no result bit or DeviceStats field.
  void set_capture(check::AccessSink* capture) {
    GS_CHECK_MSG(capture == nullptr || check_ == nullptr,
                 "checker and capture sink are mutually exclusive");
    capture_ = capture;
  }

  /// The attached capture sink, or nullptr.
  [[nodiscard]] check::AccessSink* capture() const noexcept { return capture_; }

  /// The active access sink (checker or capture, never both), or nullptr.
  /// DeviceBuffer stamps this into the CheckedSpans it hands out.
  [[nodiscard]] check::AccessSink* access_sink() const noexcept {
    return check_ != nullptr ? static_cast<check::AccessSink*>(check_)
                             : capture_;
  }

  /// Attach (or with nullptr detach) a metrics registry (OBSERVABILITY.md,
  /// "Metrics"). While attached, every kernel launch updates the aggregate
  /// `vgpu.kernel.*` counters, the `vgpu.kernel_seconds` histogram and the
  /// per-kernel-name `vgpu.kernel.<name>.{launches,seconds,bytes}` tallies,
  /// and every PCIe copy updates `vgpu.{h2d,d2h}.*` plus the transfer-size
  /// histograms. All metric references are resolved here (and on first
  /// sight of a new kernel name), so the per-launch cost is pointer bumps.
  /// Detached (the default) costs one branch per launch/copy; attaching
  /// changes no DeviceStats field or result bit.
  void set_metrics(metrics::MetricsRegistry* registry) {
    metrics_ = registry;
    kernel_metrics_.clear();
    if (registry == nullptr) return;
    agg_.kernel_launches = &registry->counter("vgpu.kernel.launches");
    agg_.kernel_seconds = &registry->counter("vgpu.kernel.seconds");
    agg_.kernel_flops = &registry->counter("vgpu.kernel.flops");
    agg_.kernel_bytes = &registry->counter("vgpu.kernel.bytes");
    agg_.kernel_hist = &registry->histogram("vgpu.kernel_seconds",
                                            metrics::seconds_buckets());
    agg_.h2d_count = &registry->counter("vgpu.h2d.count");
    agg_.h2d_bytes = &registry->counter("vgpu.h2d.bytes");
    agg_.h2d_seconds = &registry->counter("vgpu.h2d.seconds");
    agg_.h2d_hist =
        &registry->histogram("vgpu.h2d_bytes", metrics::bytes_buckets());
    agg_.d2h_count = &registry->counter("vgpu.d2h.count");
    agg_.d2h_bytes = &registry->counter("vgpu.d2h.bytes");
    agg_.d2h_seconds = &registry->counter("vgpu.d2h.seconds");
    agg_.d2h_hist =
        &registry->histogram("vgpu.d2h_bytes", metrics::bytes_buckets());
  }

  /// The attached metrics registry, or nullptr.
  [[nodiscard]] metrics::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

  /// Attach (or with nullptr detach) a decision-log recorder
  /// (OBSERVABILITY.md, "Recorder"). The device itself never records —
  /// decisions are an engine-level concept — but engines that multiplex
  /// several solver objects over one device (device-revised, batch) read
  /// it back from here, mirroring how the trace/checker/metrics attach
  /// points flow. The recorder is borrowed, not owned.
  void set_recorder(record::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// The attached recorder, or nullptr.
  [[nodiscard]] record::Recorder* recorder() const noexcept {
    return recorder_;
  }

  /// Simulated time elapsed on this device since the last reset.
  [[nodiscard]] double sim_seconds() const noexcept {
    return stats_.sim_seconds();
  }

  /// Default block size for 1D launches (CUDA-typical).
  static constexpr std::size_t kBlockSize = 256;

  /// 1D data-parallel launch: body(i) for each i in [0, n).
  /// The body must be noexcept (kernels cannot throw, as in CUDA).
  template <typename F>
  void parallel_for(std::string_view name, std::size_t n, KernelCost cost,
                    F&& body) {
    launch_blocks(name, n, kBlockSize, cost,
                  [&body](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) body(i);
                  });
  }

  /// Block-granular launch: body(block, begin, end) with the [begin, end)
  /// thread range of that block. Hot kernels write their own inner loop so
  /// the compiler can vectorize it; simulated cost is unchanged.
  template <typename F>
  void launch_blocks(std::string_view name, std::size_t n,
                     std::size_t block_size, KernelCost cost, F&& body) {
    GS_CHECK_MSG(block_size > 0, "block size must be positive");
    // An empty grid never reaches the device: the CUDA driver rejects a
    // zero-block launch before submission, so no launch overhead is paid.
    // Charging here used to inflate kernel_launches on degenerate shapes
    // (e.g. a zero-row LP's m-wide kernels).
    if (n == 0) return;
    {
      const std::size_t blocks = (n + block_size - 1) / block_size;
      check::AccessSink* sink = access_sink();
      if (sink != nullptr) {
        // Observed path (checker or capture): bracket the launch so
        // footprints recorded by CheckedSpans are attributed to this
        // kernel, and stamp the executing block id into thread-local
        // state for race detection.
        sink->begin_launch(name, cost.flops, cost.bytes, n, block_size);
        pool_.run_chunks(blocks, [&](std::size_t b) {
          check::detail::tls_block = static_cast<std::uint32_t>(b);
          const std::size_t begin = b * block_size;
          const std::size_t end = std::min(n, begin + block_size);
          body(b, begin, end);
        });
        sink->end_launch();
      } else {
        pool_.run_chunks(blocks, [&](std::size_t b) {
          const std::size_t begin = b * block_size;
          const std::size_t end = std::min(n, begin + block_size);
          body(b, begin, end);
        });
      }
    }
    record_kernel(name, cost, n);
  }

  /// Charge a kernel launch without executing a body. Used by multi-stage
  /// operations (e.g. blocked triangular solves) whose functional result is
  /// produced once elsewhere but whose device execution would be a chain of
  /// dependent launches — each stage is accounted individually.
  void account_kernel(std::string_view name, KernelCost cost,
                      std::size_t threads) {
    record_kernel(name, cost, threads);
  }

  /// Charge a host-to-device copy of `bytes`. A zero-byte copy never
  /// reaches the driver (the sparse paths hit this with empty index
  /// ranges, same as the zero-block launch case above), so it costs
  /// nothing and does not bump transfer counts.
  void account_h2d(std::size_t bytes) {
    if (bytes == 0) return;
    const double t = model_.transfer_seconds(bytes);
    if (trace_.enabled()) {
      trace_.complete("h2d", stats_.sim_seconds(), t, "transfer",
                      {{"bytes", static_cast<double>(bytes)}});
    }
    if (metrics_ != nullptr) {
      agg_.h2d_count->inc();
      agg_.h2d_bytes->inc(static_cast<double>(bytes));
      agg_.h2d_seconds->inc(t);
      agg_.h2d_hist->observe(static_cast<double>(bytes));
    }
    ++stats_.h2d_count;
    stats_.h2d_bytes += bytes;
    stats_.h2d_seconds += t;
  }

  /// Charge a device-to-host copy of `bytes`. Zero bytes: uncharged, as
  /// for h2d.
  void account_d2h(std::size_t bytes) {
    if (bytes == 0) return;
    const double t = model_.transfer_seconds(bytes);
    if (trace_.enabled()) {
      trace_.complete("d2h", stats_.sim_seconds(), t, "transfer",
                      {{"bytes", static_cast<double>(bytes)}});
    }
    if (metrics_ != nullptr) {
      agg_.d2h_count->inc();
      agg_.d2h_bytes->inc(static_cast<double>(bytes));
      agg_.d2h_seconds->inc(t);
      agg_.d2h_hist->observe(static_cast<double>(bytes));
    }
    ++stats_.d2h_count;
    stats_.d2h_bytes += bytes;
    stats_.d2h_seconds += t;
  }

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_.worker_count();
  }

 private:
  void record_kernel(std::string_view name, const KernelCost& cost,
                     std::size_t threads) {
    const double t = model_.kernel_seconds(cost.flops, cost.bytes, threads,
                                           cost.scalar_bytes);
    if (trace_.enabled()) {
      trace_.complete(name, stats_.sim_seconds(), t, "kernel",
                      {{"flops", cost.flops},
                       {"bytes", cost.bytes},
                       {"threads", static_cast<double>(threads)},
                       {"scalar_bytes", static_cast<double>(cost.scalar_bytes)},
                       {"sim_seconds", t}});
    }
    if (metrics_ != nullptr) {
      agg_.kernel_launches->inc();
      agg_.kernel_seconds->inc(t);
      agg_.kernel_flops->inc(cost.flops);
      agg_.kernel_bytes->inc(cost.bytes);
      agg_.kernel_hist->observe(t);
      const KernelMetricRefs& km = kernel_metric_refs(name);
      km.launches->inc();
      km.seconds->inc(t);
      km.bytes->inc(cost.bytes);
    }
    ++stats_.kernel_launches;
    stats_.kernel_seconds += t;
    stats_.total_flops += cost.flops;
    stats_.total_bytes += cost.bytes;
    auto it = stats_.per_kernel.find(name);
    if (it == stats_.per_kernel.end()) {
      it = stats_.per_kernel.emplace(std::string(name), KernelRecord{}).first;
    }
    KernelRecord& rec = it->second;
    ++rec.launches;
    rec.sim_seconds += t;
    rec.flops += cost.flops;
    rec.bytes += cost.bytes;
  }

  /// Metric references resolved once per kernel name (first launch pays
  /// the name lookup/creation; later launches hit this cache).
  struct KernelMetricRefs {
    metrics::Counter* launches = nullptr;
    metrics::Counter* seconds = nullptr;
    metrics::Counter* bytes = nullptr;
  };

  /// Aggregate metric references resolved at set_metrics() time; valid only
  /// while metrics_ != nullptr (registry node storage keeps them stable).
  struct AggregateMetricRefs {
    metrics::Counter* kernel_launches = nullptr;
    metrics::Counter* kernel_seconds = nullptr;
    metrics::Counter* kernel_flops = nullptr;
    metrics::Counter* kernel_bytes = nullptr;
    metrics::Histogram* kernel_hist = nullptr;
    metrics::Counter* h2d_count = nullptr;
    metrics::Counter* h2d_bytes = nullptr;
    metrics::Counter* h2d_seconds = nullptr;
    metrics::Histogram* h2d_hist = nullptr;
    metrics::Counter* d2h_count = nullptr;
    metrics::Counter* d2h_bytes = nullptr;
    metrics::Counter* d2h_seconds = nullptr;
    metrics::Histogram* d2h_hist = nullptr;
  };

  const KernelMetricRefs& kernel_metric_refs(std::string_view name) {
    auto it = kernel_metrics_.find(name);
    if (it == kernel_metrics_.end()) {
      const std::string base = "vgpu.kernel." + std::string(name);
      KernelMetricRefs refs{&metrics_->counter(base + ".launches"),
                            &metrics_->counter(base + ".seconds"),
                            &metrics_->counter(base + ".bytes")};
      it = kernel_metrics_.emplace(std::string(name), refs).first;
    }
    return it->second;
  }

  MachineModel model_;
  ThreadPool pool_;
  DeviceStats stats_;
  trace::Track trace_;
  check::Checker* check_ = nullptr;  ///< borrowed; see set_checker()
  check::AccessSink* capture_ = nullptr;  ///< borrowed; see set_capture()
  metrics::MetricsRegistry* metrics_ = nullptr;  ///< borrowed; see set_metrics()
  record::Recorder* recorder_ = nullptr;  ///< borrowed; see set_recorder()
  AggregateMetricRefs agg_;
  std::map<std::string, KernelMetricRefs, std::less<>> kernel_metrics_;
};

}  // namespace gs::vgpu
