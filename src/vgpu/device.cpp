#include "vgpu/device.hpp"

#include <ostream>

#include "support/table.hpp"
#include "vgpu/stats_report.hpp"

namespace gs::vgpu {

void print_kernel_breakdown(std::ostream& os, const DeviceStats& stats) {
  Table table({"kernel", "launches", "sim ms", "share %", "GFLOP", "GB"});
  const double total = stats.sim_seconds();
  for (const auto& [name, rec] : stats.per_kernel) {
    table.new_row()
        .add(name)
        .add(static_cast<long>(rec.launches))
        .add(rec.sim_seconds * 1e3)
        .add(total > 0 ? 100.0 * rec.sim_seconds / total : 0.0)
        .add(rec.flops * 1e-9)
        .add(rec.bytes * 1e-9);
  }
  table.new_row()
      .add("(h2d transfers)")
      .add(static_cast<long>(stats.h2d_count))
      .add(stats.h2d_seconds * 1e3)
      .add(total > 0 ? 100.0 * stats.h2d_seconds / total : 0.0)
      .add(0.0)
      .add(static_cast<double>(stats.h2d_bytes) * 1e-9);
  table.new_row()
      .add("(d2h transfers)")
      .add(static_cast<long>(stats.d2h_count))
      .add(stats.d2h_seconds * 1e3)
      .add(total > 0 ? 100.0 * stats.d2h_seconds / total : 0.0)
      .add(0.0)
      .add(static_cast<double>(stats.d2h_bytes) * 1e-9);
  table.print(os);
}

}  // namespace gs::vgpu
