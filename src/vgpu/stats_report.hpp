// Human-readable rendering of device statistics (used by Tab.1 breakdown).
#pragma once

#include <iosfwd>

#include "vgpu/device.hpp"

namespace gs::vgpu {

/// Print a per-kernel time/FLOP/byte breakdown plus transfer rows.
void print_kernel_breakdown(std::ostream& os, const DeviceStats& stats);

}  // namespace gs::vgpu
