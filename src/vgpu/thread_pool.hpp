// Minimal persistent thread pool used to execute virtual-GPU kernel blocks.
//
// Functional execution of kernels is host-side; on machines with more than
// one hardware thread the pool spreads blocks across workers. With a single
// worker (the default on a 1-core container) execution is inline, which
// keeps the substrate deterministic and overhead-free there.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gs::vgpu {

class ThreadPool {
 public:
  /// `workers == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_; }

  /// Run `body(chunk)` for chunk in [0, chunks), blocking until all complete.
  /// With one worker this runs inline on the calling thread. `body` must not
  /// throw; kernel bodies are noexcept by contract (like CUDA kernels).
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::size_t workers_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_chunks_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t active_ = 0;
  std::size_t generation_ = 0;
  bool stopping_ = false;
};

}  // namespace gs::vgpu
