#include "vgpu/machine_model.hpp"

#include <algorithm>

namespace gs::vgpu {

double MachineModel::kernel_seconds(double flops, double bytes,
                                    std::size_t threads,
                                    std::size_t scalar_bytes) const noexcept {
  const double peak_gflops =
      scalar_bytes <= 4 ? peak_gflops_sp : peak_gflops_dp;
  const double occupancy =
      std::min(1.0, static_cast<double>(std::max<std::size_t>(threads, 1)) /
                        static_cast<double>(saturation_threads));
  const double f_eff = peak_gflops * 1e9 * occupancy;
  const double b_eff = mem_gbps * 1e9 * occupancy;
  const double t_compute = f_eff > 0 ? flops / f_eff : 0.0;
  const double t_memory = b_eff > 0 ? bytes / b_eff : 0.0;
  return launch_overhead_s + std::max(t_compute, t_memory);
}

double MachineModel::transfer_seconds(std::size_t bytes) const noexcept {
  if (xfer_gbps <= 0) return 0.0;
  return xfer_latency_s + static_cast<double>(bytes) / (xfer_gbps * 1e9);
}

MachineModel gtx280_model() {
  MachineModel m;
  m.name = "GTX280";
  // 240 SPs @ 1.296 GHz; sustained (non-MUL-dual-issue) SP ~= 400 GFLOP/s,
  // DP unit is 1/8 rate -> ~60 GFLOP/s sustained ~40. Bandwidth 141.7 GB/s
  // peak, ~110 sustained. Launch overhead ~6 us (2009 driver stack),
  // PCIe 1.1 x16 ~ 4 GB/s effective.
  m.peak_gflops_sp = 400.0;
  m.peak_gflops_dp = 40.0;
  m.mem_gbps = 110.0;
  m.launch_overhead_s = 6e-6;
  m.saturation_threads = 240 * 32;  // SPs x threads-in-flight each
  m.xfer_gbps = 4.0;
  m.xfer_latency_s = 8e-6;
  return m;
}

MachineModel gtx570_model() {
  MachineModel m;
  m.name = "GTX570";
  m.peak_gflops_sp = 1000.0;
  m.peak_gflops_dp = 120.0;
  m.mem_gbps = 130.0;
  m.launch_overhead_s = 5e-6;
  m.saturation_threads = 480 * 32;
  m.xfer_gbps = 6.0;
  m.xfer_latency_s = 7e-6;
  return m;
}

MachineModel titan_model() {
  MachineModel m;
  m.name = "GTX-TITAN";
  m.peak_gflops_sp = 3500.0;
  m.peak_gflops_dp = 1100.0;
  m.mem_gbps = 230.0;
  m.launch_overhead_s = 5e-6;
  m.saturation_threads = 2688 * 16;
  m.xfer_gbps = 10.0;
  m.xfer_latency_s = 6e-6;
  return m;
}

MachineModel cpu2009_model() {
  MachineModel m;
  m.name = "CPU-2009-1core";
  // One core of a Core-2/Nehalem-class CPU: ~4 flops/cycle SSE2 double at
  // ~2.8 GHz sustains ~5 GFLOP/s on BLAS-2; single-core stream bandwidth
  // ~8 GB/s. Function call overhead is negligible next to kernel launches.
  m.peak_gflops_sp = 10.0;
  m.peak_gflops_dp = 5.0;
  m.mem_gbps = 8.0;
  m.launch_overhead_s = 0.0;
  m.saturation_threads = 1;
  m.xfer_gbps = 0.0;  // host memory: no interconnect cost
  m.xfer_latency_s = 0.0;
  return m;
}

}  // namespace gs::vgpu
