// Kernel-safety checker for the virtual GPU: an opt-in checked execution
// mode that enforces CUDA kernel semantics on the substrate.
//
// The vgpu executes kernels functionally on the host, so defects that
// would corrupt results on a real GPU — cross-block data races,
// out-of-bounds indexing, NaN generation — are latent here, especially on
// a single-worker pool where blocks happen to run in order. A `Checker`
// attached to a `Device` records the per-block element footprint of every
// `launch_blocks` / `parallel_for` and, after each launch, reports:
//
//   1. data races   — element-level write-write or read-write overlap
//                     between *different* blocks (blocks are unordered on
//                     a GPU and under a multi-worker ThreadPool);
//   2. out-of-bounds — any access at index >= span size, with kernel name
//                     and index (the access is redirected to a scratch
//                     cell so checked runs never corrupt memory);
//   3. NaN introduction — a kernel whose outputs contain NaN while every
//                     value it read was finite (Inf optionally too);
//   4. cost lint    — observed element traffic vs. the declared
//                     KernelCost{flops, bytes}, flagging kernels whose
//                     roofline accounting drifted beyond a tolerance.
//
// Zero-overhead-when-off policy: like the trace sink, checking is a
// branch on a pointer. `DeviceBuffer::device_span()` returns a
// `CheckedSpan<T>` that holds the device's checker pointer; when no
// checker is attached every access is a single predictable null test
// around the raw load/store, and results are bit-identical to an
// unchecked build. See CHECKING.md for the full rules and limitations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace gs::vgpu::check {

/// Element type tag carried by a CheckedSpan so the checker can inspect
/// written values (NaN scan) without templates in its own interface.
enum class ElemKind : std::uint8_t { kF32, kF64, kOther };

template <typename T>
constexpr ElemKind elem_kind_of() {
  using U = std::remove_cv_t<T>;
  if constexpr (std::is_same_v<U, float>) {
    return ElemKind::kF32;
  } else if constexpr (std::is_same_v<U, double>) {
    return ElemKind::kF64;
  } else {
    return ElemKind::kOther;
  }
}

enum class FindingKind : std::uint8_t {
  kRace,
  kOutOfBounds,
  kNonFinite,
  kCostMismatch,
};

std::string_view to_string(FindingKind kind);

/// One deduplicated defect report. Findings are keyed by (kind, kernel);
/// repeated occurrences bump `count` and keep the first `detail`.
struct Finding {
  FindingKind kind;
  std::string kernel;  ///< launch name ("<host>" for accesses outside one)
  std::string detail;  ///< human-readable specifics (index, blocks, ratio)
  std::size_t count = 1;
};

struct CheckConfig {
  bool races = true;
  bool non_finite = true;
  /// Flag Inf as well as NaN. Off by default: the ratio-test kernel
  /// legitimately writes +inf for ineligible rows.
  bool flag_infinite = false;
  bool cost_lint = true;
  /// Lint fires when observed bytes exceed declared bytes by this factor.
  /// Declarations are worst-case dense models, so observed < declared is
  /// legitimate (early-outs, sparsity); under-declaration is the bug.
  /// Tightened from 4x to 2x once the static analyzer started
  /// cross-checking declarations offline (CHECKING.md "Static analysis");
  /// all shipped kernels hold at 2x.
  double cost_ratio_tol = 2.0;
  /// Launches whose declared *and* observed traffic are both below this
  /// are ignored by the lint (fixed-size seeds, scalar postludes).
  double cost_min_bytes = 64.0;
  /// Kernels exempt from the cost lint. gemm re-reads each B row per
  /// output row by design; its declaration models ideal cached traffic.
  std::vector<std::string> lint_skip = {"gemm"};
  /// Stop growing the findings list after this many distinct entries.
  std::size_t max_findings = 64;
};

namespace detail {

/// Block id of the chunk currently executing on this thread. Set by the
/// Device's checked launch path before invoking the kernel body.
inline thread_local std::uint32_t tls_block = 0;

/// Out-of-bounds accesses are redirected here so a checked run reports
/// the defect instead of corrupting neighbouring storage (or crashing).
template <typename T>
inline T& oob_cell() {
  thread_local T cell{};
  return cell;
}

struct Interval {
  std::size_t lo, hi;  // half-open element range [lo, hi)
  std::uint32_t block;
};

}  // namespace detail

/// Abstract consumer of the substrate's access stream. `Device`,
/// `DeviceBuffer`, and `CheckedSpan` funnel every launch boundary, element
/// footprint, allocation, and transfer through the one sink attached to
/// the device. Two implementations exist:
///
///   * `Checker` (below)            — dynamic per-launch validation;
///   * `analyze::CaptureLog`        — static launch-graph capture
///                                    (src/vgpu/analyze, CHECKING.md
///                                    "Static analysis").
///
/// At most one sink is attached at a time, so the zero-overhead-when-off
/// contract is unchanged: every hook site is a single branch on one
/// pointer. The lifetime/transfer hooks default to no-ops because the
/// dynamic checker only cares about in-launch footprints.
class AccessSink {
 public:
  virtual ~AccessSink() = default;

  /// Device calls this before running the launch body across the pool.
  virtual void begin_launch(std::string_view kernel, double declared_flops,
                            double declared_bytes, std::size_t threads,
                            std::size_t block_size) = 0;
  /// Device calls this after the pool barrier.
  virtual void end_launch() = 0;

  /// Record a half-open element range [lo, hi). Kernels that operate on
  /// raw pointers for vectorisation annotate their footprint with
  /// CheckedSpan::read_range / write_range, which land here.
  virtual void note_range(const void* base, std::size_t extent, ElemKind kind,
                          std::size_t elem_size, std::size_t lo,
                          std::size_t hi, bool is_write) = 0;

  /// Record an out-of-bounds access (checked even outside launches).
  virtual void note_oob(std::size_t index, std::size_t extent,
                        bool is_write) = 0;

  // ---- Buffer lifetime + PCIe transfers (DeviceBuffer). ------------------
  // elem_size lets the capture log report element-typed ranges; bytes may
  // be zero for empty buffers (still a distinct live allocation).
  virtual void on_alloc(const void* base, std::size_t bytes,
                        std::size_t elem_size) {
    (void)base, (void)bytes, (void)elem_size;
  }
  virtual void on_free(const void* base) { (void)base; }
  /// Host-to-device copy of byte range [lo_byte, hi_byte) into the buffer
  /// at `base`; `host_data` points at the staged bytes (valid only for the
  /// duration of the call — hash, don't retain).
  virtual void on_h2d(const void* base, std::size_t lo_byte,
                      std::size_t hi_byte, const void* host_data) {
    (void)base, (void)lo_byte, (void)hi_byte, (void)host_data;
  }
  /// Device-to-host copy of byte range [lo_byte, hi_byte).
  virtual void on_d2h(const void* base, std::size_t lo_byte,
                      std::size_t hi_byte) {
    (void)base, (void)lo_byte, (void)hi_byte;
  }

  /// Record a single-element access from the current block (see
  /// detail::tls_block). Convenience shim over note_range.
  void note_access(const void* base, std::size_t extent, ElemKind kind,
                   std::size_t elem_size, std::size_t index, bool is_write) {
    note_range(base, extent, kind, elem_size, index, index + 1, is_write);
  }
};

/// Records per-block access footprints during a launch and analyses them
/// when the launch retires. Attach with `Device::set_checker`; the same
/// checker may outlive many launches and accumulates findings until
/// `reset()`. Recording is mutex-serialised, so multi-worker pools are
/// safe (checked mode trades speed for validation).
class Checker : public AccessSink {
 public:
  explicit Checker(CheckConfig config = {}) : cfg_(std::move(config)) {}

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  const CheckConfig& config() const { return cfg_; }
  const std::vector<Finding>& findings() const { return findings_; }
  bool clean() const { return findings_.empty(); }
  std::size_t launches_checked() const { return launches_; }

  /// Drop all findings and footprint state (config is kept).
  void reset();

  /// Multi-line human-readable report of every finding plus a summary.
  std::string report() const;

  // ---- Substrate-facing interface (Device / CheckedSpan). ----------------

  /// Device calls this before running the launch body across the pool.
  void begin_launch(std::string_view kernel, double declared_flops,
                    double declared_bytes, std::size_t threads,
                    std::size_t block_size) override;
  /// Device calls this after the pool barrier; runs race / NaN / cost
  /// analysis over the recorded footprints, then clears them.
  void end_launch() override;

  /// Record a half-open element range [lo, hi). No-op outside a launch:
  /// host-side span accesses between launches model the substrate's
  /// "unified memory" convenience and are not kernel semantics.
  void note_range(const void* base, std::size_t extent, ElemKind kind,
                  std::size_t elem_size, std::size_t lo, std::size_t hi,
                  bool is_write) override;

  /// Record an out-of-bounds access (checked even outside launches).
  void note_oob(std::size_t index, std::size_t extent, bool is_write) override;

 private:
  struct SpanLog {
    ElemKind kind = ElemKind::kOther;
    std::size_t elem_size = 0;
    const std::byte* base = nullptr;
    std::size_t extent = 0;
    std::vector<detail::Interval> reads, writes;
  };

  void add_finding(FindingKind kind, const std::string& kernel,
                   std::string detail);
  void analyze_races(const SpanLog& log);
  void analyze_non_finite();
  void analyze_cost();
  bool span_has_non_finite(const SpanLog& log,
                           const std::vector<detail::Interval>& ivals,
                           std::size_t* where) const;

  CheckConfig cfg_;
  mutable std::mutex mu_;
  std::vector<Finding> findings_;
  std::size_t dropped_ = 0;

  // Per-launch state.
  bool in_launch_ = false;
  std::string kernel_ = "<host>";
  double declared_bytes_ = 0.0;
  std::size_t launches_ = 0;
  std::unordered_map<const void*, SpanLog> logs_;
};

template <typename T>
class CheckedSpan;

/// Proxy returned by `CheckedSpan<T>::operator[]` for mutable spans: it
/// must observe whether the element is read or written, which a plain
/// `T&` cannot. Converts to T on read; assignment records a write.
template <typename T>
class ElemRef {
 public:
  ElemRef(const CheckedSpan<T>* span, std::size_t index)
      : span_(span), index_(index) {}
  ElemRef(const ElemRef&) = default;

  operator T() const { return span_->read(index_); }  // NOLINT(google-explicit-constructor)

  ElemRef& operator=(T value) {
    span_->write(index_, value);
    return *this;
  }
  ElemRef& operator=(const ElemRef& other) {
    span_->write(index_, static_cast<T>(other));
    return *this;
  }
  ElemRef& operator+=(T value) { return *this = static_cast<T>(*this) + value; }
  ElemRef& operator-=(T value) { return *this = static_cast<T>(*this) - value; }
  ElemRef& operator*=(T value) { return *this = static_cast<T>(*this) * value; }
  ElemRef& operator/=(T value) { return *this = static_cast<T>(*this) / value; }

 private:
  const CheckedSpan<T>* span_;
  std::size_t index_;
};

/// Span over device storage that funnels every element access through an
/// optional AccessSink (the dynamic Checker or the static-analysis
/// CaptureLog). With no sink attached (`chk_ == nullptr`) each access
/// costs one predictable branch around the raw load/store — the
/// zero-overhead-when-off contract shared with the trace sink.
///
/// Kernels that keep raw `data()` pointers in their hot loops (for
/// vectorisation) declare their footprint in bulk with `read_range` /
/// `write_range` instead; the checker treats both identically.
template <typename T>
class CheckedSpan {
 public:
  using Elem = std::remove_const_t<T>;

  CheckedSpan() = default;
  CheckedSpan(T* data, std::size_t size, AccessSink* sink)
      : data_(data), size_(size), chk_(sink) {}

  /// Mutable spans convert to const views (mirrors std::span).
  operator CheckedSpan<const Elem>() const  // NOLINT(google-explicit-constructor)
    requires(!std::is_const_v<T>)
  {
    return {data_, size_, chk_};
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() const { return data_; }

  decltype(auto) operator[](std::size_t i) const {
    if constexpr (std::is_const_v<T>) {
      return read(i);
    } else {
      return ElemRef<T>(this, i);
    }
  }

  Elem read(std::size_t i) const {
    if (chk_ != nullptr) {
      if (i >= size_) {
        chk_->note_oob(i, size_, /*is_write=*/false);
        return Elem{};
      }
      chk_->note_access(data_, size_, check::elem_kind_of<T>(), sizeof(Elem),
                        i, /*is_write=*/false);
    }
    return data_[i];
  }

  void write(std::size_t i, Elem value) const
    requires(!std::is_const_v<T>)
  {
    if (chk_ != nullptr) {
      if (i >= size_) {
        chk_->note_oob(i, size_, /*is_write=*/true);
        detail::oob_cell<Elem>() = value;
        return;
      }
      chk_->note_access(data_, size_, check::elem_kind_of<T>(), sizeof(Elem),
                        i, /*is_write=*/true);
    }
    data_[i] = value;
  }

  /// Bulk footprint annotations for kernels indexing through raw
  /// pointers. [lo, hi) is clamped to the span; the out-of-span part is
  /// reported as OOB.
  void read_range(std::size_t lo, std::size_t hi) const {
    if (chk_ != nullptr) annotate(lo, hi, /*is_write=*/false);
  }
  void write_range(std::size_t lo, std::size_t hi) const
    requires(!std::is_const_v<T>)
  {
    if (chk_ != nullptr) annotate(lo, hi, /*is_write=*/true);
  }

 private:
  void annotate(std::size_t lo, std::size_t hi, bool is_write) const {
    if (lo > size_ || hi > size_) {
      chk_->note_oob(hi > size_ ? hi - 1 : lo, size_, is_write);
    }
    lo = lo < size_ ? lo : size_;
    hi = hi < size_ ? hi : size_;
    if (lo < hi) {
      chk_->note_range(data_, size_, check::elem_kind_of<T>(), sizeof(Elem),
                       lo, hi, is_write);
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  AccessSink* chk_ = nullptr;
};

}  // namespace gs::vgpu::check
