#include "vgpu/check/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace gs::vgpu::check {

namespace {

/// Load element `i` of a float-kind span as double (for the NaN scan).
double load_value(const std::byte* base, ElemKind kind, std::size_t i) {
  if (kind == ElemKind::kF64) {
    double v;
    std::memcpy(&v, base + i * sizeof(double), sizeof(double));
    return v;
  }
  float v;
  std::memcpy(&v, base + i * sizeof(float), sizeof(float));
  return static_cast<double>(v);
}

}  // namespace

std::string_view to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::kRace: return "race";
    case FindingKind::kOutOfBounds: return "out-of-bounds";
    case FindingKind::kNonFinite: return "non-finite";
    case FindingKind::kCostMismatch: return "cost-mismatch";
  }
  return "unknown";
}

void Checker::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  findings_.clear();
  dropped_ = 0;
  launches_ = 0;
  logs_.clear();
  in_launch_ = false;
  kernel_ = "<host>";
}

std::string Checker::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const Finding& f : findings_) {
    os << "[" << to_string(f.kind) << "] kernel=" << f.kernel << ": "
       << f.detail;
    if (f.count > 1) os << " (x" << f.count << ")";
    os << "\n";
  }
  os << "checked " << launches_ << " launches; " << findings_.size()
     << " finding(s)";
  if (dropped_ > 0) os << " (+" << dropped_ << " dropped)";
  os << "\n";
  return os.str();
}

void Checker::begin_launch(std::string_view kernel, double declared_flops,
                           double declared_bytes, std::size_t threads,
                           std::size_t block_size) {
  (void)declared_flops;  // flops are not observable from element traffic
  (void)threads;
  (void)block_size;
  std::lock_guard<std::mutex> lock(mu_);
  in_launch_ = true;
  kernel_.assign(kernel);
  declared_bytes_ = declared_bytes;
  logs_.clear();
}

void Checker::end_launch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++launches_;
  if (cfg_.races) {
    for (const auto& [base, log] : logs_) analyze_races(log);
  }
  if (cfg_.non_finite) analyze_non_finite();
  if (cfg_.cost_lint) analyze_cost();
  logs_.clear();
  in_launch_ = false;
  kernel_ = "<host>";
}

void Checker::note_range(const void* base, std::size_t extent, ElemKind kind,
                         std::size_t elem_size, std::size_t lo, std::size_t hi,
                         bool is_write) {
  std::lock_guard<std::mutex> lock(mu_);
  // Host-side span accesses between launches model the substrate's
  // "unified memory" convenience — only bounds are enforced there.
  if (!in_launch_ || lo >= hi) return;
  SpanLog& log = logs_[base];
  if (log.base == nullptr) {
    log.kind = kind;
    log.elem_size = elem_size;
    log.base = static_cast<const std::byte*>(base);
    log.extent = extent;
  }
  std::vector<detail::Interval>& side = is_write ? log.writes : log.reads;
  const std::uint32_t block = detail::tls_block;
  // Consecutive accesses from a streaming loop coalesce into one
  // interval; anything else appends. Interleaved kernels interleave
  // across *different* spans, so the common case stays O(1).
  if (!side.empty()) {
    detail::Interval& last = side.back();
    if (last.block == block && last.hi == lo) {
      last.hi = hi;
      return;
    }
  }
  side.push_back({lo, hi, block});
}

void Checker::note_oob(std::size_t index, std::size_t extent, bool is_write) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << (is_write ? "write" : "read") << " at index " << index
     << " in span of size " << extent;
  add_finding(FindingKind::kOutOfBounds, kernel_, os.str());
}

void Checker::add_finding(FindingKind kind, const std::string& kernel,
                          std::string detail) {
  for (Finding& f : findings_) {
    if (f.kind == kind && f.kernel == kernel) {
      ++f.count;
      return;
    }
  }
  if (findings_.size() >= cfg_.max_findings) {
    ++dropped_;
    return;
  }
  findings_.push_back({kind, kernel, std::move(detail), 1});
}

void Checker::analyze_races(const SpanLog& log) {
  if (log.writes.empty()) return;
  // Merge reads and writes into one lo-sorted list and sweep, tracking
  // the furthest-reaching write and read seen so far (with their block
  // ids). Any interval that starts before the frontier of the *other*
  // access kind — or before the write frontier, for writes — from a
  // different block overlaps a conflicting access: on a GPU (and under a
  // multi-worker pool) blocks are unordered, so that is a data race.
  struct Tagged {
    detail::Interval iv;
    bool is_write;
  };
  std::vector<Tagged> all;
  all.reserve(log.reads.size() + log.writes.size());
  for (const auto& iv : log.writes) all.push_back({iv, true});
  for (const auto& iv : log.reads) all.push_back({iv, false});
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return a.iv.lo != b.iv.lo ? a.iv.lo < b.iv.lo : (a.is_write && !b.is_write);
  });

  constexpr std::size_t kNone = static_cast<std::size_t>(0);
  std::size_t write_hi = kNone, read_hi = kNone;
  std::uint32_t write_block = 0, read_block = 0;
  bool have_write = false, have_read = false;
  for (const Tagged& t : all) {
    const auto& iv = t.iv;
    if (t.is_write) {
      if (have_write && iv.lo < write_hi && iv.block != write_block) {
        std::ostringstream os;
        os << "write-write overlap at element " << iv.lo << " (blocks "
           << iv.block << " and " << write_block << ")";
        add_finding(FindingKind::kRace, kernel_, os.str());
        return;
      }
      if (have_read && iv.lo < read_hi && iv.block != read_block) {
        std::ostringstream os;
        os << "read-write overlap at element " << iv.lo << " (write block "
           << iv.block << ", read block " << read_block << ")";
        add_finding(FindingKind::kRace, kernel_, os.str());
        return;
      }
      if (!have_write || iv.hi > write_hi) {
        write_hi = iv.hi;
        write_block = iv.block;
      }
      have_write = true;
    } else {
      if (have_write && iv.lo < write_hi && iv.block != write_block) {
        std::ostringstream os;
        os << "read-write overlap at element " << iv.lo << " (read block "
           << iv.block << ", write block " << write_block << ")";
        add_finding(FindingKind::kRace, kernel_, os.str());
        return;
      }
      if (!have_read || iv.hi > read_hi) {
        read_hi = iv.hi;
        read_block = iv.block;
      }
      have_read = true;
    }
  }
}

bool Checker::span_has_non_finite(const SpanLog& log,
                                  const std::vector<detail::Interval>& ivals,
                                  std::size_t* where) const {
  if (log.kind == ElemKind::kOther) return false;
  for (const auto& iv : ivals) {
    for (std::size_t i = iv.lo; i < iv.hi && i < log.extent; ++i) {
      if (!std::isfinite(load_value(log.base, log.kind, i))) {
        if (where != nullptr) *where = i;
        return true;
      }
    }
  }
  return false;
}

void Checker::analyze_non_finite() {
  // Values are inspected after the launch completes, so reads of spans
  // the kernel also wrote reflect post-launch contents; those spans are
  // excluded from the "were the inputs finite?" test (documented
  // limitation for in-place kernels in CHECKING.md).
  bool inputs_non_finite = false;
  for (const auto& [base, log] : logs_) {
    if (!log.writes.empty() || log.reads.empty()) continue;
    if (span_has_non_finite(log, log.reads, nullptr)) {
      inputs_non_finite = true;
      break;
    }
  }
  if (inputs_non_finite) return;  // propagation, not introduction

  for (const auto& [base, log] : logs_) {
    if (log.writes.empty() || log.kind == ElemKind::kOther) continue;
    for (const auto& iv : log.writes) {
      for (std::size_t i = iv.lo; i < iv.hi && i < log.extent; ++i) {
        const double v = load_value(log.base, log.kind, i);
        const bool bad =
            std::isnan(v) || (cfg_.flag_infinite && std::isinf(v));
        if (bad) {
          std::ostringstream os;
          os << "wrote " << (std::isnan(v) ? "NaN" : "Inf") << " at element "
             << i << " with all-finite inputs";
          add_finding(FindingKind::kNonFinite, kernel_, os.str());
          return;
        }
      }
    }
  }
}

void Checker::analyze_cost() {
  for (const std::string& skip : cfg_.lint_skip) {
    if (kernel_ == skip) return;
  }
  double observed = 0.0;
  for (const auto& [base, log] : logs_) {
    for (const auto& iv : log.reads) {
      observed += static_cast<double>(iv.hi - iv.lo) *
                  static_cast<double>(log.elem_size);
    }
    for (const auto& iv : log.writes) {
      observed += static_cast<double>(iv.hi - iv.lo) *
                  static_cast<double>(log.elem_size);
    }
  }
  // Nothing recorded: either an uninstrumented kernel (host-vector
  // outputs only) or an account-only charge. Nothing to lint.
  if (observed == 0.0) return;
  if (observed < cfg_.cost_min_bytes && declared_bytes_ < cfg_.cost_min_bytes) {
    return;
  }
  const bool under_declared =
      declared_bytes_ <= 0.0 ||
      observed > declared_bytes_ * cfg_.cost_ratio_tol;
  if (under_declared) {
    std::ostringstream os;
    os << "observed " << observed << " bytes of element traffic vs declared "
       << declared_bytes_ << " (tolerance x" << cfg_.cost_ratio_tol << ")";
    add_finding(FindingKind::kCostMismatch, kernel_, os.str());
  }
}

}  // namespace gs::vgpu::check
