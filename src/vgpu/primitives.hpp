// Data-parallel primitives on device buffers (the thrust-equivalents the
// paper's implementation leans on): reductions, argmin/argmax with Bland
// tie-breaking, first-below search, fill/iota, scans and stream compaction.
//
// Each primitive is costed like its CUDA counterpart: one bandwidth-bound
// pass over the data (plus a small combine launch), and a scalar
// device-to-host readback when the result returns to the host — that
// readback latency is a first-order effect in the paper's small-LP regime.
//
// Determinism: partial results are produced per block sequentially and
// combined in block order, so results are identical for any worker count.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace gs::vgpu {

/// Result of an arg-reduction: index and the value at that index.
template <typename T>
struct ArgResult {
  std::size_t index = static_cast<std::size_t>(-1);
  T value{};
  [[nodiscard]] bool found() const noexcept {
    return index != static_cast<std::size_t>(-1);
  }
};

namespace detail {

inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

template <typename T>
[[nodiscard]] std::size_t block_count(const DeviceBuffer<T>& v) noexcept {
  return (v.size() + Device::kBlockSize - 1) / Device::kBlockSize;
}

/// Sequential in-block argmin scan over [begin, end): ties resolve to the
/// smallest index. Shared by vgpu::argmin and the fused simplex selection
/// kernels (simplex/at_policy.hpp) so both reduce with bit-identical
/// semantics — the fused path's pivot sequence must match the primitive's.
template <typename Span>
[[nodiscard]] std::size_t block_argmin(const Span& data, std::size_t begin,
                                       std::size_t end) noexcept {
  std::size_t best = begin;
  for (std::size_t i = begin + 1; i < end; ++i) {
    if (data[i] < data[best]) best = i;
  }
  return best;
}

/// First index in [begin, end) with data[i] < threshold, or kNoIndex.
/// Shared by vgpu::find_first_below and the fused Bland selection.
template <typename Span, typename T>
[[nodiscard]] std::size_t block_first_below(const Span& data,
                                            std::size_t begin, std::size_t end,
                                            T threshold) noexcept {
  for (std::size_t i = begin; i < end; ++i) {
    if (data[i] < threshold) return i;
  }
  return kNoIndex;
}

}  // namespace detail

/// Sum of all elements; returns the scalar to the host.
template <typename T>
[[nodiscard]] T reduce_sum(const DeviceBuffer<T>& v) {
  Device& dev = v.device();
  const std::size_t blocks = detail::block_count(v);
  std::vector<T> partial(blocks, T{0});
  auto data = v.device_span();
  dev.launch_blocks(
      "reduce_sum", v.size(), Device::kBlockSize,
      KernelCost{static_cast<double>(v.size()),
                 static_cast<double>(v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        T acc{0};
        for (std::size_t i = begin; i < end; ++i) acc += data[i];
        partial[b] = acc;
      });
  T total{0};
  dev.launch_blocks(
      "reduce_sum_final", blocks, Device::kBlockSize,
      KernelCost{static_cast<double>(blocks),
                 static_cast<double>(blocks * sizeof(T)), sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) total += partial[i];
      });
  dev.account_d2h(sizeof(T));
  return total;
}

/// Index of the minimum element; ties resolve to the smallest index
/// (Bland-compatible). Empty buffer -> !found().
template <typename T>
[[nodiscard]] ArgResult<T> argmin(const DeviceBuffer<T>& v) {
  Device& dev = v.device();
  if (v.empty()) return {};
  const std::size_t blocks = detail::block_count(v);
  std::vector<std::size_t> part_idx(blocks, detail::kNoIndex);
  std::vector<T> part_val(blocks);
  auto data = v.device_span();
  dev.launch_blocks(
      "argmin", v.size(), Device::kBlockSize,
      KernelCost{static_cast<double>(v.size()),
                 static_cast<double>(v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        const std::size_t best = detail::block_argmin(data, begin, end);
        part_idx[b] = best;
        part_val[b] = data[best];
      });
  ArgResult<T> result{part_idx[0], part_val[0]};
  dev.launch_blocks(
      "argmin_final", blocks, Device::kBlockSize,
      KernelCost{static_cast<double>(blocks),
                 static_cast<double>(blocks * (sizeof(T) + sizeof(std::size_t))),
                 sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (part_val[i] < result.value) {
            result = {part_idx[i], part_val[i]};
          }
        }
      });
  dev.account_d2h(sizeof(T) + sizeof(std::size_t));
  return result;
}

/// Index of the maximum element; ties resolve to the smallest index.
template <typename T>
[[nodiscard]] ArgResult<T> argmax(const DeviceBuffer<T>& v) {
  Device& dev = v.device();
  if (v.empty()) return {};
  const std::size_t blocks = detail::block_count(v);
  std::vector<std::size_t> part_idx(blocks, detail::kNoIndex);
  std::vector<T> part_val(blocks);
  auto data = v.device_span();
  dev.launch_blocks(
      "argmax", v.size(), Device::kBlockSize,
      KernelCost{static_cast<double>(v.size()),
                 static_cast<double>(v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        std::size_t best = begin;
        for (std::size_t i = begin + 1; i < end; ++i) {
          if (data[i] > data[best]) best = i;
        }
        part_idx[b] = best;
        part_val[b] = data[best];
      });
  ArgResult<T> result{part_idx[0], part_val[0]};
  dev.launch_blocks(
      "argmax_final", blocks, Device::kBlockSize,
      KernelCost{static_cast<double>(blocks),
                 static_cast<double>(blocks * (sizeof(T) + sizeof(std::size_t))),
                 sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (part_val[i] > result.value) {
            result = {part_idx[i], part_val[i]};
          }
        }
      });
  dev.account_d2h(sizeof(T) + sizeof(std::size_t));
  return result;
}

/// Smallest index i with v[i] < threshold (Bland's entering-variable rule),
/// or !found() if no element qualifies.
template <typename T>
[[nodiscard]] ArgResult<T> find_first_below(const DeviceBuffer<T>& v,
                                            T threshold) {
  Device& dev = v.device();
  if (v.empty()) return {};
  const std::size_t blocks = detail::block_count(v);
  std::vector<std::size_t> part_idx(blocks, detail::kNoIndex);
  auto data = v.device_span();
  dev.launch_blocks(
      "find_first_below", v.size(), Device::kBlockSize,
      KernelCost{static_cast<double>(v.size()),
                 static_cast<double>(v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        part_idx[b] = detail::block_first_below(data, begin, end, threshold);
      });
  ArgResult<T> result{};
  dev.launch_blocks(
      "find_first_below_final", blocks, Device::kBlockSize,
      KernelCost{static_cast<double>(blocks),
                 static_cast<double>(blocks * sizeof(std::size_t)), sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (part_idx[i] != detail::kNoIndex) {
            result.index = part_idx[i];
            break;
          }
        }
      });
  if (result.found()) result.value = data[result.index];
  dev.account_d2h(sizeof(T) + sizeof(std::size_t));
  return result;
}

/// Set every element to `value`.
template <typename T>
void fill(DeviceBuffer<T>& v, T value) {
  auto data = v.device_span();
  v.device().parallel_for(
      "fill", v.size(),
      KernelCost{0.0, static_cast<double>(v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t i) { data[i] = value; });
}

/// v[i] = start + i.
template <typename T>
void iota(DeviceBuffer<T>& v, T start = T{0}) {
  auto data = v.device_span();
  v.device().parallel_for(
      "iota", v.size(),
      KernelCost{static_cast<double>(v.size()),
                 static_cast<double>(v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t i) { data[i] = start + static_cast<T>(i); });
}

/// Inclusive prefix sum: out[i] = v[0] + ... + v[i]. Two-pass block scan,
/// deterministic for any worker count.
template <typename T>
void inclusive_scan(const DeviceBuffer<T>& v, DeviceBuffer<T>& out) {
  GS_CHECK_MSG(out.size() == v.size(), "scan output size mismatch");
  Device& dev = v.device();
  if (v.empty()) return;
  const std::size_t blocks = detail::block_count(v);
  std::vector<T> block_total(blocks, T{0});
  auto in = v.device_span();
  auto res = out.device_span();
  dev.launch_blocks(
      "scan_local", v.size(), Device::kBlockSize,
      KernelCost{static_cast<double>(v.size()),
                 static_cast<double>(2 * v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        T acc{0};
        for (std::size_t i = begin; i < end; ++i) {
          acc += in[i];
          res[i] = acc;
        }
        block_total[b] = acc;
      });
  // Exclusive scan of block totals (small, single "block" on device).
  std::vector<T> block_offset(blocks, T{0});
  dev.launch_blocks(
      "scan_block_totals", blocks, blocks,
      KernelCost{static_cast<double>(blocks),
                 static_cast<double>(2 * blocks * sizeof(T)), sizeof(T)},
      [&](std::size_t, std::size_t, std::size_t) {
        T acc{0};
        for (std::size_t b = 0; b < blocks; ++b) {
          block_offset[b] = acc;
          acc += block_total[b];
        }
      });
  dev.launch_blocks(
      "scan_add_offsets", v.size(), Device::kBlockSize,
      KernelCost{static_cast<double>(v.size()),
                 static_cast<double>(2 * v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        const T offset = block_offset[b];
        for (std::size_t i = begin; i < end; ++i) res[i] += offset;
      });
}

/// Count of elements satisfying `pred` (pred must be a pure function).
template <typename T, typename Pred>
[[nodiscard]] std::size_t count_if(const DeviceBuffer<T>& v, Pred pred) {
  Device& dev = v.device();
  const std::size_t blocks = detail::block_count(v);
  std::vector<std::size_t> partial(blocks, 0);
  auto data = v.device_span();
  dev.launch_blocks(
      "count_if", v.size(), Device::kBlockSize,
      KernelCost{static_cast<double>(v.size()),
                 static_cast<double>(v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        std::size_t c = 0;
        for (std::size_t i = begin; i < end; ++i) {
          if (pred(data[i])) ++c;
        }
        partial[b] = c;
      });
  std::size_t total = 0;
  for (std::size_t b = 0; b < blocks; ++b) total += partial[b];
  dev.account_d2h(sizeof(std::size_t));
  return total;
}

/// Stream compaction: indices (ascending) of all elements satisfying pred.
/// Returned to the host, as the solver's control logic consumes them there.
template <typename T, typename Pred>
[[nodiscard]] std::vector<std::uint32_t> indices_where(const DeviceBuffer<T>& v,
                                                       Pred pred) {
  Device& dev = v.device();
  const std::size_t blocks = detail::block_count(v);
  std::vector<std::vector<std::uint32_t>> partial(blocks);
  auto data = v.device_span();
  dev.launch_blocks(
      "compact_indices", v.size(), Device::kBlockSize,
      KernelCost{static_cast<double>(v.size()),
                 static_cast<double>(2 * v.size() * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (pred(data[i])) partial[b].push_back(static_cast<std::uint32_t>(i));
        }
      });
  std::vector<std::uint32_t> out;
  for (auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  dev.account_d2h(out.size() * sizeof(std::uint32_t));
  return out;
}

}  // namespace gs::vgpu
