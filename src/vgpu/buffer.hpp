// Device-resident buffer with explicit, accounted host<->device transfers.
//
// Semantically equivalent to cudaMalloc'd memory: the contents are only
// legitimately touched inside kernel bodies (via device_span()) or moved
// with upload()/download(), which charge PCIe time on the owning device.
// The type is move-only, like a unique handle to device memory.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "vgpu/device.hpp"

namespace gs::vgpu {

template <typename T>
class DeviceBuffer {
 public:
  /// Allocate `n` elements. Contents are zero-initialized — unlike CUDA this
  /// is deterministic by design; callers that need garbage tolerance must
  /// still write before reading.
  DeviceBuffer(Device& device, std::size_t n) : device_(&device), storage_(n) {
    notify_alloc();
  }

  /// Allocate and upload in one step (charged as a single H2D copy).
  DeviceBuffer(Device& device, std::span<const T> host)
      : device_(&device), storage_(host.size()) {
    notify_alloc();
    upload(host);
  }

  // Moves hand over the storage (the std::vector move keeps the data
  // pointer stable, so an attached capture sink's base->buffer identity
  // survives); the source is left detached so only one handle ever
  // reports the free. These used to be `= default`, but a defaulted move
  // assignment would silently destroy the target's storage without the
  // on_free notification the lifetime analysis depends on.
  DeviceBuffer(DeviceBuffer&& other) noexcept
      : device_(other.device_), storage_(std::move(other.storage_)) {
    other.device_ = nullptr;
  }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      device_ = other.device_;
      storage_ = std::move(other.storage_);
      other.device_ = nullptr;
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }
  [[nodiscard]] Device& device() const noexcept { return *device_; }

  /// Device-side view; by convention only dereferenced inside kernel bodies.
  /// The returned CheckedSpan carries the device's active access sink
  /// (checker or capture log): when one is attached (CHECKING.md) every
  /// element access is recorded and bounds-checked; detached, each access
  /// is one null test around the raw load/store.
  [[nodiscard]] check::CheckedSpan<T> device_span() noexcept {
    return {storage_.data(), storage_.size(), device_->access_sink()};
  }
  [[nodiscard]] check::CheckedSpan<const T> device_span() const noexcept {
    return {storage_.data(), storage_.size(), device_->access_sink()};
  }

  /// Instrumentation-only peek at device memory from the host, outside
  /// the machine model: no PCIe time is charged, no trace slice or metric
  /// is emitted, and no checker footprint is recorded. This exists for
  /// observers that must not perturb the modeled solve — the
  /// HealthMonitor's strided residual probes read B⁻¹ columns through it
  /// (OBSERVABILITY.md). Never use it for algorithm data flow; that is
  /// what download()/device_span() are for.
  [[nodiscard]] std::span<const T> host_view() const noexcept {
    return {storage_.data(), storage_.size()};
  }

  /// Copy host -> device (whole buffer or prefix), charging PCIe time.
  /// The range check is overflow-safe: `offset + host.size()` could wrap
  /// for hostile offsets, so compare against the remaining capacity.
  /// Zero-byte copies are no-ops: the early return precedes all
  /// accounting, so no PCIe operation is charged and no trace slice or
  /// metric is emitted — the disabled-path bit-identity guarantee holds
  /// for empty transfers too.
  void upload(std::span<const T> host, std::size_t offset = 0) {
    GS_CHECK_MSG(offset <= storage_.size() &&
                     host.size() <= storage_.size() - offset,
                 "upload out of range");
    if (host.empty()) return;
    std::memcpy(storage_.data() + offset, host.data(),
                host.size() * sizeof(T));
    device_->account_h2d(host.size() * sizeof(T));
    if (check::AccessSink* s = device_->access_sink()) {
      s->on_h2d(storage_.data(), offset * sizeof(T),
                (offset + host.size()) * sizeof(T), host.data());
    }
  }

  /// Copy device -> host, charging PCIe time. Bounds and zero-byte
  /// handling mirror upload().
  void download(std::span<T> host, std::size_t offset = 0) const {
    GS_CHECK_MSG(offset <= storage_.size() &&
                     host.size() <= storage_.size() - offset,
                 "download out of range");
    if (host.empty()) return;
    std::memcpy(host.data(), storage_.data() + offset,
                host.size() * sizeof(T));
    device_->account_d2h(host.size() * sizeof(T));
    if (check::AccessSink* s = device_->access_sink()) {
      s->on_d2h(storage_.data(), offset * sizeof(T),
                (offset + host.size()) * sizeof(T));
    }
  }

  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> out(storage_.size());
    download(out);
    return out;
  }

  /// Single-element readback — the latency-dominated copy that punctuates
  /// every simplex iteration (chosen index, theta, objective delta).
  [[nodiscard]] T download_value(std::size_t index) const {
    GS_CHECK_MSG(index < storage_.size(), "download_value out of range");
    device_->account_d2h(sizeof(T));
    if (check::AccessSink* s = device_->access_sink()) {
      s->on_d2h(storage_.data(), index * sizeof(T), (index + 1) * sizeof(T));
    }
    return storage_[index];
  }

  /// Single-element write (H2D latency charge).
  void upload_value(std::size_t index, const T& value) {
    GS_CHECK_MSG(index < storage_.size(), "upload_value out of range");
    device_->account_h2d(sizeof(T));
    storage_[index] = value;
    if (check::AccessSink* s = device_->access_sink()) {
      s->on_h2d(storage_.data(), index * sizeof(T), (index + 1) * sizeof(T),
                &value);
    }
  }

  /// Device-to-device copy, charged as one bandwidth-bound kernel.
  void copy_from(const DeviceBuffer& other) {
    GS_CHECK_MSG(other.size() == size(), "copy_from size mismatch");
    GS_CHECK_MSG(other.device_ == device_, "cross-device copy unsupported");
    auto src = other.device_span();
    auto dst = device_span();
    device_->launch_blocks(
        "d2d_copy", size(), Device::kBlockSize,
        KernelCost{0.0, static_cast<double>(2 * size() * sizeof(T)), sizeof(T)},
        [&](std::size_t, std::size_t begin, std::size_t end) {
          src.read_range(begin, end);
          dst.write_range(begin, end);
          std::memcpy(dst.data() + begin, src.data() + begin,
                      (end - begin) * sizeof(T));
        });
  }

 private:
  void notify_alloc() {
    if (check::AccessSink* s = device_->access_sink()) {
      s->on_alloc(storage_.data(), storage_.size() * sizeof(T), sizeof(T));
    }
  }

  /// Report the free to the active sink and detach. Safe to call on
  /// moved-from handles (device_ == nullptr).
  void release() noexcept {
    if (device_ == nullptr) return;
    if (check::AccessSink* s = device_->access_sink()) {
      s->on_free(storage_.data());
    }
    device_ = nullptr;
  }

  Device* device_;
  std::vector<T> storage_;
};

}  // namespace gs::vgpu
