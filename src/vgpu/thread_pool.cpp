#include "vgpu/thread_pool.hpp"

#include "support/error.hpp"

namespace gs::vgpu {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_ = workers;
  if (workers_ > 1) {
    threads_.reserve(workers_);
    for (std::size_t i = 0; i < workers_; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  if (!threads_.empty()) {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto& t : threads_) t.join();
  }
}

void ThreadPool::run_chunks(std::size_t chunks,
                            const std::function<void(std::size_t)>& body) {
  if (chunks == 0) return;
  if (threads_.empty() || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) body(c);
    return;
  }
  std::unique_lock lock(mutex_);
  job_ = &body;
  job_chunks_ = chunks;
  next_chunk_ = 0;
  active_ = 0;
  ++generation_;
  work_ready_.notify_all();
  work_done_.wait(lock, [this] {
    return next_chunk_ >= job_chunks_ && active_ == 0;
  });
  job_ = nullptr;
}

void ThreadPool::worker_loop() {
  std::size_t seen_generation = 0;
  for (;;) {
    std::unique_lock lock(mutex_);
    work_ready_.wait(lock, [&] {
      return stopping_ || (job_ != nullptr && generation_ != seen_generation);
    });
    if (stopping_) return;
    seen_generation = generation_;
    const auto* job = job_;
    while (next_chunk_ < job_chunks_) {
      const std::size_t chunk = next_chunk_++;
      ++active_;
      lock.unlock();
      (*job)(chunk);
      lock.lock();
      --active_;
    }
    if (active_ == 0) work_done_.notify_one();
  }
}

}  // namespace gs::vgpu
