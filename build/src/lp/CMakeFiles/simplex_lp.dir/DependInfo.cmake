
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/generators.cpp" "src/lp/CMakeFiles/simplex_lp.dir/generators.cpp.o" "gcc" "src/lp/CMakeFiles/simplex_lp.dir/generators.cpp.o.d"
  "/root/repo/src/lp/lp_text.cpp" "src/lp/CMakeFiles/simplex_lp.dir/lp_text.cpp.o" "gcc" "src/lp/CMakeFiles/simplex_lp.dir/lp_text.cpp.o.d"
  "/root/repo/src/lp/mps.cpp" "src/lp/CMakeFiles/simplex_lp.dir/mps.cpp.o" "gcc" "src/lp/CMakeFiles/simplex_lp.dir/mps.cpp.o.d"
  "/root/repo/src/lp/presolve.cpp" "src/lp/CMakeFiles/simplex_lp.dir/presolve.cpp.o" "gcc" "src/lp/CMakeFiles/simplex_lp.dir/presolve.cpp.o.d"
  "/root/repo/src/lp/problem.cpp" "src/lp/CMakeFiles/simplex_lp.dir/problem.cpp.o" "gcc" "src/lp/CMakeFiles/simplex_lp.dir/problem.cpp.o.d"
  "/root/repo/src/lp/scaling.cpp" "src/lp/CMakeFiles/simplex_lp.dir/scaling.cpp.o" "gcc" "src/lp/CMakeFiles/simplex_lp.dir/scaling.cpp.o.d"
  "/root/repo/src/lp/standard_form.cpp" "src/lp/CMakeFiles/simplex_lp.dir/standard_form.cpp.o" "gcc" "src/lp/CMakeFiles/simplex_lp.dir/standard_form.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/simplex_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/simplex_vgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
