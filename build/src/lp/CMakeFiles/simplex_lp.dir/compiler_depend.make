# Empty compiler generated dependencies file for simplex_lp.
# This may be replaced when dependencies are built.
