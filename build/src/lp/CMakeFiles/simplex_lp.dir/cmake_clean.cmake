file(REMOVE_RECURSE
  "CMakeFiles/simplex_lp.dir/generators.cpp.o"
  "CMakeFiles/simplex_lp.dir/generators.cpp.o.d"
  "CMakeFiles/simplex_lp.dir/lp_text.cpp.o"
  "CMakeFiles/simplex_lp.dir/lp_text.cpp.o.d"
  "CMakeFiles/simplex_lp.dir/mps.cpp.o"
  "CMakeFiles/simplex_lp.dir/mps.cpp.o.d"
  "CMakeFiles/simplex_lp.dir/presolve.cpp.o"
  "CMakeFiles/simplex_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/simplex_lp.dir/problem.cpp.o"
  "CMakeFiles/simplex_lp.dir/problem.cpp.o.d"
  "CMakeFiles/simplex_lp.dir/scaling.cpp.o"
  "CMakeFiles/simplex_lp.dir/scaling.cpp.o.d"
  "CMakeFiles/simplex_lp.dir/standard_form.cpp.o"
  "CMakeFiles/simplex_lp.dir/standard_form.cpp.o.d"
  "libsimplex_lp.a"
  "libsimplex_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
