file(REMOVE_RECURSE
  "libsimplex_lp.a"
)
