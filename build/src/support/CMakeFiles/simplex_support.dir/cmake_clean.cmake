file(REMOVE_RECURSE
  "CMakeFiles/simplex_support.dir/rng.cpp.o"
  "CMakeFiles/simplex_support.dir/rng.cpp.o.d"
  "CMakeFiles/simplex_support.dir/strings.cpp.o"
  "CMakeFiles/simplex_support.dir/strings.cpp.o.d"
  "CMakeFiles/simplex_support.dir/table.cpp.o"
  "CMakeFiles/simplex_support.dir/table.cpp.o.d"
  "libsimplex_support.a"
  "libsimplex_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
