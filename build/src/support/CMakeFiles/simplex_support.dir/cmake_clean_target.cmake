file(REMOVE_RECURSE
  "libsimplex_support.a"
)
