# Empty compiler generated dependencies file for simplex_support.
# This may be replaced when dependencies are built.
