file(REMOVE_RECURSE
  "CMakeFiles/simplex_vgpu.dir/device.cpp.o"
  "CMakeFiles/simplex_vgpu.dir/device.cpp.o.d"
  "CMakeFiles/simplex_vgpu.dir/machine_model.cpp.o"
  "CMakeFiles/simplex_vgpu.dir/machine_model.cpp.o.d"
  "CMakeFiles/simplex_vgpu.dir/thread_pool.cpp.o"
  "CMakeFiles/simplex_vgpu.dir/thread_pool.cpp.o.d"
  "libsimplex_vgpu.a"
  "libsimplex_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
