# Empty compiler generated dependencies file for simplex_vgpu.
# This may be replaced when dependencies are built.
