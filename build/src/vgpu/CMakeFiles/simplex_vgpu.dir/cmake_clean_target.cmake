file(REMOVE_RECURSE
  "libsimplex_vgpu.a"
)
