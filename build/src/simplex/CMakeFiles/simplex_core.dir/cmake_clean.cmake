file(REMOVE_RECURSE
  "CMakeFiles/simplex_core.dir/host_revised.cpp.o"
  "CMakeFiles/simplex_core.dir/host_revised.cpp.o.d"
  "CMakeFiles/simplex_core.dir/phase_setup.cpp.o"
  "CMakeFiles/simplex_core.dir/phase_setup.cpp.o.d"
  "CMakeFiles/simplex_core.dir/tableau.cpp.o"
  "CMakeFiles/simplex_core.dir/tableau.cpp.o.d"
  "libsimplex_core.a"
  "libsimplex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
