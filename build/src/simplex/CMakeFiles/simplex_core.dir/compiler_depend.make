# Empty compiler generated dependencies file for simplex_core.
# This may be replaced when dependencies are built.
