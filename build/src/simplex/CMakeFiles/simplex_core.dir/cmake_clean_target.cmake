file(REMOVE_RECURSE
  "libsimplex_core.a"
)
