# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_scenario_analysis "/root/repo/build/examples/scenario_analysis")
set_tests_properties(example_scenario_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_wyndor_lp "/root/repo/build/examples/lp_cli" "/root/repo/data/wyndor.lp" "--duals" "--stats")
set_tests_properties(cli_wyndor_lp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_testprob_mps "/root/repo/build/examples/lp_cli" "/root/repo/data/testprob.mps" "--engine" "host")
set_tests_properties(cli_testprob_mps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_refinery_presolve "/root/repo/build/examples/lp_cli" "/root/repo/data/refinery.lp" "--presolve" "--engine" "sparse")
set_tests_properties(cli_refinery_presolve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_beale_bland "/root/repo/build/examples/lp_cli" "/root/repo/data/beale.lp" "--pricing" "bland")
set_tests_properties(cli_beale_bland PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_beale_dantzig_cycles "/root/repo/build/examples/lp_cli" "/root/repo/data/beale.lp" "--pricing" "dantzig" "--max-iters" "300")
set_tests_properties(cli_beale_dantzig_cycles PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_scaled_lu "/root/repo/build/examples/lp_cli" "/root/repo/data/wyndor.lp" "--scale" "geometric" "--basis" "lu")
set_tests_properties(cli_scaled_lu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
