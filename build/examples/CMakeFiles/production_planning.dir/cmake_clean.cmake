file(REMOVE_RECURSE
  "CMakeFiles/production_planning.dir/production_planning.cpp.o"
  "CMakeFiles/production_planning.dir/production_planning.cpp.o.d"
  "production_planning"
  "production_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
