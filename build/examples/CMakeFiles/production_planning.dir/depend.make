# Empty dependencies file for production_planning.
# This may be replaced when dependencies are built.
