file(REMOVE_RECURSE
  "CMakeFiles/lp_cli.dir/lp_cli.cpp.o"
  "CMakeFiles/lp_cli.dir/lp_cli.cpp.o.d"
  "lp_cli"
  "lp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
