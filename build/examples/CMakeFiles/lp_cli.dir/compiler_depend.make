# Empty compiler generated dependencies file for lp_cli.
# This may be replaced when dependencies are built.
