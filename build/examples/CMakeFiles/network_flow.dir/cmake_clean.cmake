file(REMOVE_RECURSE
  "CMakeFiles/network_flow.dir/network_flow.cpp.o"
  "CMakeFiles/network_flow.dir/network_flow.cpp.o.d"
  "network_flow"
  "network_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
