# Empty dependencies file for network_flow.
# This may be replaced when dependencies are built.
