# Empty dependencies file for scenario_analysis.
# This may be replaced when dependencies are built.
