file(REMOVE_RECURSE
  "CMakeFiles/scenario_analysis.dir/scenario_analysis.cpp.o"
  "CMakeFiles/scenario_analysis.dir/scenario_analysis.cpp.o.d"
  "scenario_analysis"
  "scenario_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
