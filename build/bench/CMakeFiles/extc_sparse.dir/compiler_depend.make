# Empty compiler generated dependencies file for extc_sparse.
# This may be replaced when dependencies are built.
