file(REMOVE_RECURSE
  "CMakeFiles/extc_sparse.dir/extc_sparse.cpp.o"
  "CMakeFiles/extc_sparse.dir/extc_sparse.cpp.o.d"
  "extc_sparse"
  "extc_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extc_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
