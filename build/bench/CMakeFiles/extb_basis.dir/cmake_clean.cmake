file(REMOVE_RECURSE
  "CMakeFiles/extb_basis.dir/extb_basis.cpp.o"
  "CMakeFiles/extb_basis.dir/extb_basis.cpp.o.d"
  "extb_basis"
  "extb_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extb_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
