# Empty compiler generated dependencies file for extb_basis.
# This may be replaced when dependencies are built.
