file(REMOVE_RECURSE
  "CMakeFiles/tab1_breakdown.dir/tab1_breakdown.cpp.o"
  "CMakeFiles/tab1_breakdown.dir/tab1_breakdown.cpp.o.d"
  "tab1_breakdown"
  "tab1_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
