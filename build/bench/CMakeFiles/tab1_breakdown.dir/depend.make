# Empty dependencies file for tab1_breakdown.
# This may be replaced when dependencies are built.
