# Empty compiler generated dependencies file for fig2_speedup.
# This may be replaced when dependencies are built.
