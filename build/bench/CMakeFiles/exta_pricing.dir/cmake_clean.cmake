file(REMOVE_RECURSE
  "CMakeFiles/exta_pricing.dir/exta_pricing.cpp.o"
  "CMakeFiles/exta_pricing.dir/exta_pricing.cpp.o.d"
  "exta_pricing"
  "exta_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exta_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
