# Empty compiler generated dependencies file for exta_pricing.
# This may be replaced when dependencies are built.
