# Empty compiler generated dependencies file for tab2_agreement.
# This may be replaced when dependencies are built.
