file(REMOVE_RECURSE
  "CMakeFiles/tab2_agreement.dir/tab2_agreement.cpp.o"
  "CMakeFiles/tab2_agreement.dir/tab2_agreement.cpp.o.d"
  "tab2_agreement"
  "tab2_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
