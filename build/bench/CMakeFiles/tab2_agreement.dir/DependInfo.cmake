
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab2_agreement.cpp" "bench/CMakeFiles/tab2_agreement.dir/tab2_agreement.cpp.o" "gcc" "bench/CMakeFiles/tab2_agreement.dir/tab2_agreement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simplex/CMakeFiles/simplex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/simplex_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/simplex_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simplex_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
