# Empty dependencies file for fig1_runtime_vs_size.
# This may be replaced when dependencies are built.
