file(REMOVE_RECURSE
  "CMakeFiles/fig1_runtime_vs_size.dir/fig1_runtime_vs_size.cpp.o"
  "CMakeFiles/fig1_runtime_vs_size.dir/fig1_runtime_vs_size.cpp.o.d"
  "fig1_runtime_vs_size"
  "fig1_runtime_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_runtime_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
