# Empty compiler generated dependencies file for extd_devices.
# This may be replaced when dependencies are built.
