file(REMOVE_RECURSE
  "CMakeFiles/extd_devices.dir/extd_devices.cpp.o"
  "CMakeFiles/extd_devices.dir/extd_devices.cpp.o.d"
  "extd_devices"
  "extd_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extd_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
