file(REMOVE_RECURSE
  "CMakeFiles/fig3_precision.dir/fig3_precision.cpp.o"
  "CMakeFiles/fig3_precision.dir/fig3_precision.cpp.o.d"
  "fig3_precision"
  "fig3_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
