# Empty dependencies file for fig3_precision.
# This may be replaced when dependencies are built.
