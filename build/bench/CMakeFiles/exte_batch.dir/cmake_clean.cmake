file(REMOVE_RECURSE
  "CMakeFiles/exte_batch.dir/exte_batch.cpp.o"
  "CMakeFiles/exte_batch.dir/exte_batch.cpp.o.d"
  "exte_batch"
  "exte_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exte_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
