# Empty compiler generated dependencies file for exte_batch.
# This may be replaced when dependencies are built.
