# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vgpu "/root/repo/build/tests/test_vgpu")
set_tests_properties(test_vgpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vblas "/root/repo/build/tests/test_vblas")
set_tests_properties(test_vblas PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sparse "/root/repo/build/tests/test_sparse")
set_tests_properties(test_sparse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lp "/root/repo/build/tests/test_lp")
set_tests_properties(test_lp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_standard_form "/root/repo/build/tests/test_standard_form")
set_tests_properties(test_standard_form PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_simplex "/root/repo/build/tests/test_simplex")
set_tests_properties(test_simplex PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_duality "/root/repo/build/tests/test_duality")
set_tests_properties(test_duality PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mps "/root/repo/build/tests/test_mps")
set_tests_properties(test_mps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_presolve "/root/repo/build/tests/test_presolve")
set_tests_properties(test_presolve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_batch "/root/repo/build/tests/test_batch")
set_tests_properties(test_batch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ranging "/root/repo/build/tests/test_ranging")
set_tests_properties(test_ranging PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;gs_add_test;/root/repo/tests/CMakeLists.txt;0;")
