file(REMOVE_RECURSE
  "CMakeFiles/test_ranging.dir/test_ranging.cpp.o"
  "CMakeFiles/test_ranging.dir/test_ranging.cpp.o.d"
  "test_ranging"
  "test_ranging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
