# Empty compiler generated dependencies file for test_ranging.
# This may be replaced when dependencies are built.
