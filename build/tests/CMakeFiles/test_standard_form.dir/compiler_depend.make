# Empty compiler generated dependencies file for test_standard_form.
# This may be replaced when dependencies are built.
