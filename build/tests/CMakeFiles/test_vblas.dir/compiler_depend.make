# Empty compiler generated dependencies file for test_vblas.
# This may be replaced when dependencies are built.
