file(REMOVE_RECURSE
  "CMakeFiles/test_vblas.dir/test_vblas.cpp.o"
  "CMakeFiles/test_vblas.dir/test_vblas.cpp.o.d"
  "test_vblas"
  "test_vblas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
