// Production planning with realistic structure: blending, capacity and
// contractual-minimum rows, bounded and shifted variables — the kind of
// dense mid-size LP the paper's introduction motivates. Demonstrates the
// LP text reader and a comparison of all engines on one model.
#include <iostream>

#include "lp/lp_text.hpp"
#include "simplex/solver.hpp"
#include "support/table.hpp"

namespace {

// A refinery blending model: two crude inputs, three products; maximize
// margin under distillation capacity, quality and contract constraints.
constexpr const char* kModel = R"(
# refinery blending (margins in $/bbl)
max: 9 gas_a + 7 gas_b + 6 diesel_a + 5 diesel_b + 3 fuel_a + 2.5 fuel_b
     - 4 crude_a - 3 crude_b;

# yields: each crude barrel splits into product fractions
yield_gas:    0.4 crude_a + 0.3 crude_b - gas_a - gas_b = 0;
yield_diesel: 0.3 crude_a + 0.35 crude_b - diesel_a - diesel_b = 0;
yield_fuel:   0.25 crude_a + 0.3 crude_b - fuel_a - fuel_b = 0;

# distillation capacity (kbbl/day)
capacity: crude_a + crude_b <= 110;

# product demand ceilings
gas_demand:    gas_a + gas_b <= 36;
diesel_demand: diesel_a + diesel_b <= 32;

# contractual minimum on fuel oil
fuel_contract: fuel_a + fuel_b >= 10;

bounds:
  crude_a <= 80;
  crude_b <= 70;
)";

}  // namespace

int main() {
  using namespace gs;
  const lp::LpProblem problem = lp::read_lp_text(kModel);
  std::cout << "model: " << problem.num_variables() << " variables, "
            << problem.num_constraints() << " constraints\n\n";

  Table table({"engine", "status", "objective [$k/day]", "iters",
               "phase1", "modeled time [ms]"});
  for (const simplex::Engine engine :
       {simplex::Engine::kDeviceRevised, simplex::Engine::kHostRevised,
        simplex::Engine::kTableau, simplex::Engine::kSparseRevised}) {
    const auto r = solve(problem, engine);
    table.new_row()
        .add(std::string(to_string(engine)))
        .add(std::string(to_string(r.status)))
        .add(r.optimal() ? r.objective : 0.0)
        .add(r.stats.iterations)
        .add(r.stats.phase1_iterations)
        .add(r.stats.sim_seconds * 1e3);
  }
  table.print(std::cout);

  const auto best = solve(problem, simplex::Engine::kDeviceRevised);
  if (!best.optimal()) return 1;
  std::cout << "\noptimal plan:\n";
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    if (best.x[j] > 1e-6) {
      std::cout << "  " << problem.variable(j).name << " = " << best.x[j]
                << " kbbl/day\n";
    }
  }
  return 0;
}
