// Single vs double precision, the user-facing version of Fig. 3: solve the
// same instance with DeviceRevisedSimplex<float> and <double>, compare the
// modeled time, the iteration path, and the objective error — then show
// how scaling rescues a badly-conditioned instance in float.
#include <cmath>
#include <iostream>
#include <string_view>
#include <vector>

#include "lp/generators.hpp"
#include "lp/scaling.hpp"
#include "lp/standard_form.hpp"
#include "simplex/device_revised.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  // `--tiny` shrinks the sweep for ctest tier-1 smoke coverage.
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--tiny") tiny = true;
  }
  const std::vector<std::size_t> sizes =
      tiny ? std::vector<std::size_t>{16, 32}
           : std::vector<std::size_t>{64, 128, 256};

  Table table({"m=n", "double [ms]", "float [ms]", "rel error",
               "same pivot path"});
  for (const std::size_t size : sizes) {
    const auto problem = lp::random_dense_lp(
        {.rows = size, .cols = size, .seed = 21});
    vgpu::Device dev_d(vgpu::gtx280_model());
    simplex::DeviceRevisedSimplex<double> solver_d(dev_d);
    const auto rd = solver_d.solve(problem);
    vgpu::Device dev_f(vgpu::gtx280_model());
    simplex::DeviceRevisedSimplex<float> solver_f(dev_f);
    const auto rf = solver_f.solve(problem);
    if (!rd.optimal() || !rf.optimal()) return 1;
    table.new_row()
        .add(size)
        .add(rd.stats.sim_seconds * 1e3)
        .add(rf.stats.sim_seconds * 1e3)
        .add(std::abs(rf.objective - rd.objective) /
             (1.0 + std::abs(rd.objective)))
        .add(rd.stats.iterations == rf.stats.iterations ? "yes" : "no");
  }
  table.print(std::cout);

  // A badly scaled instance: float struggles unless the problem is scaled
  // first (the preprocessing step the thesis-era implementations lean on).
  lp::LpProblem nasty(lp::Objective::kMinimize, "badly_scaled");
  const auto x = nasty.add_variable("x", -1e5);
  const auto y = nasty.add_variable("y", -2e-4);
  nasty.add_constraint("c1", {{x, 3e5}, {y, 1e-4}}, lp::RowSense::kLe, 6e5);
  nasty.add_constraint("c2", {{x, 1.0}, {y, 2e-4}}, lp::RowSense::kLe, 4.0);

  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<float> fsolver(dev);

  auto raw_sf = lp::to_standard_form(nasty);
  const auto raw = fsolver.solve_standard(raw_sf);

  auto scaled_sf = lp::to_standard_form(nasty);
  const lp::ScalingInfo info = lp::scale_geometric(scaled_sf);
  const auto scaled = fsolver.solve_standard(scaled_sf);

  vgpu::Device dev64(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> dsolver(dev64);
  const auto exact = dsolver.solve(nasty);

  std::cout << "\nbadly scaled instance (coefficients span 1e-4..6e5):\n"
            << "  double reference objective: " << exact.objective << "\n"
            << "  float, unscaled:   " << to_string(raw.status)
            << ", objective " << raw.objective << "\n"
            << "  float, equilibrated: " << to_string(scaled.status)
            << ", objective " << info.unscale_objective(scaled.objective)
            << "\n";
  return 0;
}
