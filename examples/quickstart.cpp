// Quickstart: build an LP programmatically, solve it on the virtual GPU,
// and read the solution back.
//
//   maximize  3 doors + 5 windows
//   s.t.      doors                <= 4     (plant 1 hours)
//                       2 windows  <= 12    (plant 2 hours)
//             3 doors + 2 windows  <= 18    (plant 3 hours)
//
// (Hillier & Lieberman's Wyndor Glass example; optimum 36 at (2, 6).)
#include <iostream>

#include "lp/problem.hpp"
#include "simplex/solver.hpp"

int main() {
  using namespace gs;

  // 1. Describe the problem.
  lp::LpProblem problem(lp::Objective::kMaximize, "wyndor");
  const auto doors = problem.add_variable("doors", 3.0);
  const auto windows = problem.add_variable("windows", 5.0);
  problem.add_constraint("plant1", {{doors, 1.0}}, lp::RowSense::kLe, 4.0);
  problem.add_constraint("plant2", {{windows, 2.0}}, lp::RowSense::kLe, 12.0);
  problem.add_constraint("plant3", {{doors, 3.0}, {windows, 2.0}},
                         lp::RowSense::kLe, 18.0);

  // 2. Solve on a GTX-280-class virtual device with default options
  //    (hybrid pricing, explicit basis inverse — the paper's configuration).
  vgpu::Device device(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(device);
  const simplex::SolveResult result = solver.solve(problem);

  // 3. Inspect the result.
  std::cout << "status:    " << to_string(result.status) << "\n";
  if (!result.optimal()) return 1;
  std::cout << "objective: " << result.objective << "\n";
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    std::cout << "  " << problem.variable(j).name << " = " << result.x[j]
              << "\n";
  }
  std::cout << "iterations:     " << result.stats.iterations << "\n"
            << "modeled device: " << result.stats.sim_seconds * 1e3
            << " ms\n"
            << "kernel launches: "
            << result.stats.device_stats.kernel_launches << "\n";
  return 0;
}
