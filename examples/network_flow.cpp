// Min-cost transportation on the sparse engine: an all-equality LP whose
// constraint matrix is extremely sparse (two nonzeros per column). This is
// the workload family where (a) the two-phase path is fully exercised and
// (b) the CSR engine's nnz-proportional pricing pays off against the dense
// engine.
#include <iostream>

#include "lp/generators.hpp"
#include "simplex/solver.hpp"
#include "support/table.hpp"

int main() {
  using namespace gs;

  Table table({"suppliers x consumers", "vars", "rows", "optimum",
               "iters (p1)", "dense sim [ms]", "sparse sim [ms]",
               "sparse speedup"});
  for (const auto& [suppliers, consumers] :
       {std::pair<std::size_t, std::size_t>{8, 10},
        std::pair<std::size_t, std::size_t>{16, 20},
        std::pair<std::size_t, std::size_t>{24, 32}}) {
    const auto problem = lp::transportation(suppliers, consumers, 42);
    const auto dense = solve(problem, simplex::Engine::kDeviceRevised);
    const auto sparse = solve(problem, simplex::Engine::kSparseRevised);
    if (!dense.optimal() || !sparse.optimal()) {
      std::cerr << "solve failed\n";
      return 1;
    }
    table.new_row()
        .add(std::to_string(suppliers) + "x" + std::to_string(consumers))
        .add(problem.num_variables())
        .add(problem.num_constraints())
        .add(sparse.objective)
        .add(std::to_string(sparse.stats.iterations) + " (" +
             std::to_string(sparse.stats.phase1_iterations) + ")")
        .add(dense.stats.sim_seconds * 1e3)
        .add(sparse.stats.sim_seconds * 1e3)
        .add(dense.stats.sim_seconds / sparse.stats.sim_seconds);
  }
  table.print(std::cout);

  // Show one shipment plan in full.
  const std::size_t suppliers = 4, consumers = 5;
  const auto problem = lp::transportation(suppliers, consumers, 7);
  const auto r = solve(problem, simplex::Engine::kSparseRevised);
  if (!r.optimal()) return 1;
  std::cout << "\nshipment plan (" << suppliers << " suppliers, " << consumers
            << " consumers), cost " << r.objective << ":\n";
  for (std::size_t i = 0; i < suppliers; ++i) {
    std::cout << "  supplier " << i << ":";
    for (std::size_t j = 0; j < consumers; ++j) {
      const double qty = r.x[i * consumers + j];
      if (qty > 1e-6) std::cout << "  ->" << j << ": " << qty;
    }
    std::cout << "\n";
  }
  return 0;
}
