// Scenario analysis: the workflow the batched engine and sensitivity
// ranging exist for.
//
// A planner has one nominal production model and wants (a) how sensitive
// the optimal plan is to each resource level and price (ranging), and
// (b) the optimal objective across a fan of demand scenarios — many small
// same-shape LPs, solved in one batched device pass.
#include <cmath>
#include <iostream>

#include "lp/generators.hpp"
#include "simplex/batch_revised.hpp"
#include "simplex/solver.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace gs;

  // ---- Nominal model: random dense production LP (m = n = 48). ----
  const lp::DenseLpSpec nominal_spec{.rows = 48, .cols = 48, .seed = 2026};
  const lp::LpProblem nominal = lp::random_dense_lp(nominal_spec);

  simplex::SolverOptions opt;
  opt.ranging = true;
  const simplex::SolveResult base =
      simplex::HostRevisedSimplex(opt).solve(nominal);
  if (!base.optimal()) return 1;
  std::cout << "nominal objective: " << base.objective << " ("
            << base.stats.iterations << " iterations)\n\n";

  // ---- Part (a): which resources are worth buying? ----
  // Rank constraints by |shadow price| and show their safe rhs ranges.
  Table sensitivity({"constraint", "shadow price", "rhs", "rhs range"});
  std::vector<std::size_t> order(nominal.num_constraints());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(base.y[a]) > std::abs(base.y[b]);
  });
  for (std::size_t k = 0; k < 5; ++k) {
    const std::size_t i = order[k];
    const auto& rg = *base.ranging;
    sensitivity.new_row()
        .add(nominal.constraint(i).name)
        .add(base.y[i])
        .add(nominal.constraint(i).rhs)
        .add("[" + format_double(rg.rhs_lower[i]) + ", " +
             format_double(rg.rhs_upper[i]) + "]");
  }
  std::cout << "top-5 binding resources by shadow price:\n";
  sensitivity.print(std::cout);

  // ---- Part (b): 32 demand scenarios, batched on the device. ----
  constexpr std::size_t kScenarios = 32;
  std::vector<lp::LpProblem> scenarios;
  scenarios.reserve(kScenarios);
  Xoshiro256 rng(7);
  for (std::size_t s = 0; s < kScenarios; ++s) {
    lp::LpProblem scenario(nominal.objective(),
                           "scenario_" + std::to_string(s));
    for (const auto& v : nominal.variables()) {
      scenario.add_variable(v.name, v.objective_coef, v.lower, v.upper);
    }
    for (std::size_t i = 0; i < nominal.num_constraints(); ++i) {
      const auto& con = nominal.constraint(i);
      // Resource availability jitters +-15% around nominal.
      scenario.add_constraint(con.name, con.terms, con.sense,
                              con.rhs * rng.uniform(0.85, 1.15));
    }
    scenarios.push_back(std::move(scenario));
  }

  vgpu::Device device(vgpu::gtx280_model());
  simplex::BatchRevisedSimplex<double> batch(device);
  const auto results = batch.solve(scenarios);

  double worst = 0.0, best = 0.0, sum = 0.0;
  for (std::size_t s = 0; s < kScenarios; ++s) {
    if (!results[s].optimal()) return 1;
    const double z = results[s].objective;
    if (s == 0) worst = best = z;
    worst = std::max(worst, z);  // minimization: larger is worse
    best = std::min(best, z);
    sum += z;
  }
  std::cout << "\n" << kScenarios << " demand scenarios (batched, one device pass):\n"
            << "  best objective:  " << best << "\n"
            << "  mean objective:  " << sum / kScenarios << "\n"
            << "  worst objective: " << worst << "\n"
            << "  modeled device time for the whole fan: "
            << results.front().stats.sim_seconds * 1e3 << " ms\n";

  // Compare with solving the fan sequentially.
  double sequential = 0.0;
  for (const auto& scenario : scenarios) {
    sequential += simplex::solve(scenario, simplex::Engine::kDeviceRevised)
                      .stats.sim_seconds;
  }
  std::cout << "  sequential device solves would take: " << sequential * 1e3
            << " ms (" << sequential / results.front().stats.sim_seconds
            << "x slower)\n";
  return 0;
}
