// lp_cli: command-line LP solver over the library's full pipeline.
//
//   lp_cli <model.{lp,mps}> [options]
//   lp_cli --gen dense:<size>[:seed] [options]
//     --engine device|device-float|host|dual|tableau|sparse
//                                                        (default device)
//     --pricing dantzig|bland|hybrid|devex               (default hybrid)
//     --basis explicit|product-form|lu                   (default explicit)
//     --device gtx280|gtx570|titan                       (default gtx280)
//     --max-iters N                                      (default 50000)
//     --presolve                                         run reductions first
//     --scale pow10|geometric                            scale standard form
//     --duals                                            print shadow prices
//     --ranging                                          rhs/cost sensitivity
//                                                        ranges (host engine)
//     --stats                                            kernel breakdown
//     --gen dense:<size>[:seed]                          solve a generated
//                                                        dense random LP
//                                                        instead of a file
//     --gen sparse:<size>[:seed]                         netlib-like sparse
//                                                        random LP (2x cols,
//                                                        2% density)
//     --gen klee:<d>                                     Klee-Minty cube of
//                                                        dimension d
//     --trace <file.json>                                write a Chrome
//                                                        trace (see
//                                                        OBSERVABILITY.md)
//     --check                                            run kernels in
//                                                        checked mode (see
//                                                        CHECKING.md); any
//                                                        finding exits 1
//     --analyze[=file.json]                              capture the launch
//                                                        graph and run the
//                                                        static analyzer
//                                                        (CHECKING.md
//                                                        "Static analysis");
//                                                        hazards, uninit
//                                                        reads, cost drift
//                                                        or >1% dead
//                                                        transfers exit 1
//     --metrics[=file.json]                              collect counters/
//                                                        histograms and
//                                                        numerical-health
//                                                        signals; print the
//                                                        JSON snapshot (or
//                                                        write it to the
//                                                        file). See
//                                                        OBSERVABILITY.md
//     --record[=file.gsrec]                              log every pivot
//                                                        decision to a
//                                                        gs-record-v1 file
//                                                        (default
//                                                        lp_cli.gsrec); see
//                                                        OBSERVABILITY.md,
//                                                        "Recorder"
//     --replay=file.gsrec                                re-run the solve
//                                                        pinned to the
//                                                        recorded decision
//                                                        sequence; the
//                                                        engine is taken
//                                                        from the recording
//                                                        header unless
//                                                        --engine overrides
//                                                        it. Any deviation
//                                                        prints the first
//                                                        mismatch and exits
//                                                        1.
//     --diff A.gsrec B.gsrec                             offline: align two
//                                                        recordings and
//                                                        report the first
//                                                        divergent pivot
//                                                        with both
//                                                        candidates
//     --post-mortem=file.gsrec                           arm a crash dump:
//                                                        on a non-optimal
//                                                        exit or any health
//                                                        warning, write the
//                                                        last 64 decisions
//                                                        + basis snapshot
//                                                        to the file
//     --profile[=out.json]                               roofline profile:
//                                                        per-kernel/phase
//                                                        aggregates with
//                                                        bound classes
//                                                        (launch/bandwidth/
//                                                        compute-bound), a
//                                                        ranked top-N
//                                                        table, and (with
//                                                        =file) gs-profile-
//                                                        v1 JSON plus a
//                                                        collapsed-stack
//                                                        .folded flamegraph
//                                                        next to it; exits
//                                                        1 unless kernel
//                                                        totals reconcile
//                                                        with DeviceStats
//                                                        bit-exactly. See
//                                                        OBSERVABILITY.md,
//                                                        "Profiler"
//     --telemetry[=out.json]                             sample per-
//                                                        iteration engine
//                                                        series (objective,
//                                                        residual, basis
//                                                        growth) on the
//                                                        modeled clock;
//                                                        print Prometheus
//                                                        text exposition
//                                                        (or write the
//                                                        gs-telemetry-v1
//                                                        JSON to the file).
//                                                        See
//                                                        OBSERVABILITY.md,
//                                                        "Telemetry & SLOs"
//     --serve-bench[=<requests>:<size>]                  demo the solve
//                                                        service
//                                                        (SERVICE.md): push
//                                                        a same-shape burst
//                                                        (default 16
//                                                        requests, m=32)
//                                                        through
//                                                        SolveService, show
//                                                        the dispatch plan,
//                                                        modeled
//                                                        throughput/latency
//                                                        and a warm-cache
//                                                        repeat
//
// Exit code: 0 optimal, 2 infeasible, 3 unbounded, 4 iteration limit,
// 1 usage/parse error (and replay mismatch / non-comparable diff).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lp/generators.hpp"
#include "lp/lp_text.hpp"
#include "lp/mps.hpp"
#include "lp/presolve.hpp"
#include "lp/scaling.hpp"
#include "lp/standard_form.hpp"
#include "metrics/metrics.hpp"
#include "profile/profile.hpp"
#include "record/record.hpp"
#include "service/service.hpp"
#include "metrics/quantile.hpp"
#include "simplex/solver.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/chrome_sink.hpp"
#include "vgpu/analyze/analyze.hpp"
#include "vgpu/check/check.hpp"
#include "vgpu/stats_report.hpp"

namespace {

using namespace gs;

int usage() {
  std::cerr
      << "usage: lp_cli <model.{lp,mps}> [--engine E] [--pricing P]\n"
         "              [--basis B] [--device D] [--max-iters N]\n"
         "              [--presolve] [--scale pow10|geometric] [--duals]\n"
         "              [--stats] [--trace out.json] [--check]\n"
         "              [--analyze[=out.json]]\n"
         "              [--metrics[=out.json]] [--record[=out.gsrec]]\n"
         "              [--replay=in.gsrec] [--post-mortem=out.gsrec]\n"
         "              [--profile[=out.json]] [--telemetry[=out.json]]\n"
         "       lp_cli --gen dense:<size>[:seed] [options]\n"
         "       lp_cli --diff a.gsrec b.gsrec\n"
         "       lp_cli --serve-bench[=<requests>:<size>]\n";
  return 1;
}

/// Parse "dense:<size>[:seed]", "sparse:<size>[:seed]" or "klee:<d>" into
/// a generated instance. The seed lands in `seed_out` so `--record` can
/// stamp it into the recording header.
std::optional<lp::LpProblem> parse_gen(const std::string& spec,
                                       std::uint64_t& seed_out) {
  try {
    if (spec.starts_with("dense:")) {
      const std::string rest = spec.substr(6);
      const std::size_t colon = rest.find(':');
      lp::DenseLpSpec gen;
      gen.rows = gen.cols = std::stoul(rest.substr(0, colon));
      if (colon != std::string::npos) {
        gen.seed = std::stoul(rest.substr(colon + 1));
      }
      if (gen.rows == 0) return std::nullopt;
      seed_out = gen.seed;
      return lp::random_dense_lp(gen);
    }
    if (spec.starts_with("sparse:")) {
      const std::string rest = spec.substr(7);
      const std::size_t colon = rest.find(':');
      lp::SparseLpSpec gen;
      gen.rows = std::stoul(rest.substr(0, colon));
      gen.cols = 2 * gen.rows;
      gen.density = 0.02;
      if (colon != std::string::npos) {
        gen.seed = std::stoul(rest.substr(colon + 1));
      }
      if (gen.rows == 0) return std::nullopt;
      seed_out = gen.seed;
      return lp::random_sparse_lp(gen);
    }
    if (spec.starts_with("klee:")) {
      const std::size_t d = std::stoul(spec.substr(5));
      if (d == 0 || d > 24) return std::nullopt;
      seed_out = d;
      return lp::klee_minty(d);
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return std::nullopt;
}

/// Map a recording header's engine string back to an Engine (for --replay
/// without an explicit --engine).
std::optional<simplex::Engine> engine_from_header(const std::string& name) {
  if (name == "host-revised") return simplex::Engine::kHostRevised;
  if (name == "dual-revised") return simplex::Engine::kDualRevised;
  if (name == "tableau") return simplex::Engine::kTableau;
  if (name == "device-revised<double>") return simplex::Engine::kDeviceRevised;
  if (name == "device-revised<float>") {
    return simplex::Engine::kDeviceRevisedFloat;
  }
  return std::nullopt;
}

int status_code(simplex::SolveStatus s) {
  switch (s) {
    case simplex::SolveStatus::kOptimal: return 0;
    case simplex::SolveStatus::kInfeasible: return 2;
    case simplex::SolveStatus::kUnbounded: return 3;
    case simplex::SolveStatus::kIterationLimit: return 4;
    case simplex::SolveStatus::kNumericalTrouble: return 5;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path;
  std::map<std::string, std::string> flags;
  bool presolve_on = false, duals_on = false, stats_on = false;
  bool ranging_on = false, check_on = false;
  bool analyze_on = false;
  std::string analyze_path;
  bool metrics_on = false;
  std::string metrics_path;
  bool record_on = false;
  std::string record_path = "lp_cli.gsrec";
  bool profile_on = false;
  std::string profile_path;
  bool telemetry_on = false;
  std::string telemetry_path;
  std::string replay_path, post_mortem_path, diff_a, diff_b;
  bool serve_bench = false;
  std::string serve_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--presolve") {
      presolve_on = true;
    } else if (arg == "--duals") {
      duals_on = true;
    } else if (arg == "--ranging") {
      ranging_on = true;
    } else if (arg == "--stats") {
      stats_on = true;
    } else if (arg == "--check") {
      check_on = true;
    } else if (arg == "--analyze") {
      // Valueless form (summary to stdout); must be matched before the
      // generic "--flag value" branch, which would eat the next argument.
      analyze_on = true;
    } else if (arg.starts_with("--analyze=")) {
      analyze_on = true;
      analyze_path = arg.substr(std::string("--analyze=").size());
      if (analyze_path.empty()) return usage();
    } else if (arg == "--metrics") {
      // Valueless form (prints to stdout); must be matched before the
      // generic "--flag value" branch, which would eat the next argument.
      metrics_on = true;
    } else if (arg.starts_with("--metrics=")) {
      metrics_on = true;
      metrics_path = arg.substr(std::string("--metrics=").size());
      if (metrics_path.empty()) return usage();
    } else if (arg == "--profile") {
      // Valueless form (table to stdout); same trap as --metrics.
      profile_on = true;
    } else if (arg.starts_with("--profile=")) {
      profile_on = true;
      profile_path = arg.substr(std::string("--profile=").size());
      if (profile_path.empty()) return usage();
    } else if (arg == "--telemetry") {
      // Valueless form (Prometheus text to stdout); same trap as --metrics.
      telemetry_on = true;
    } else if (arg.starts_with("--telemetry=")) {
      telemetry_on = true;
      telemetry_path = arg.substr(std::string("--telemetry=").size());
      if (telemetry_path.empty()) return usage();
    } else if (arg == "--record") {
      // Valueless form (default output file); same trap as --metrics.
      record_on = true;
    } else if (arg.starts_with("--record=")) {
      record_on = true;
      record_path = arg.substr(std::string("--record=").size());
      if (record_path.empty()) return usage();
    } else if (arg.starts_with("--replay=")) {
      replay_path = arg.substr(std::string("--replay=").size());
      if (replay_path.empty()) return usage();
    } else if (arg.starts_with("--post-mortem=")) {
      post_mortem_path = arg.substr(std::string("--post-mortem=").size());
      if (post_mortem_path.empty()) return usage();
    } else if (arg == "--serve-bench") {
      serve_bench = true;
    } else if (arg.starts_with("--serve-bench=")) {
      serve_bench = true;
      serve_spec = arg.substr(std::string("--serve-bench=").size());
      if (serve_spec.empty()) return usage();
    } else if (arg == "--diff") {
      // Offline mode: takes two recording operands, no model.
      if (i + 2 >= argc) return usage();
      diff_a = argv[++i];
      diff_b = argv[++i];
    } else if (arg.starts_with("--")) {
      if (i + 1 >= argc) return usage();
      flags[arg.substr(2)] = argv[++i];
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  // ---- Offline recording diff: no model load, no solve. ----
  if (!diff_a.empty()) {
    try {
      const record::Recording a = record::Recording::read_file(diff_a);
      const record::Recording b = record::Recording::read_file(diff_b);
      std::cout << "diff " << diff_a << " (" << a.header.engine << ", "
                << a.header.real_bits << "-bit, " << a.header.status
                << ") vs " << diff_b << " (" << b.header.engine << ", "
                << b.header.real_bits << "-bit, " << b.header.status << ")\n";
      const record::DiffResult dr = record::diff(a, b);
      std::cout << dr.describe() << "\n";
      return dr.comparable ? 0 : 1;
    } catch (const gs::Error& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  // ---- Service demo: a same-shape burst through SolveService. ----
  if (serve_bench) {
    std::size_t requests = 16, size = 32;
    if (!serve_spec.empty()) {
      const std::size_t colon = serve_spec.find(':');
      try {
        requests = std::stoul(serve_spec.substr(0, colon));
        if (colon != std::string::npos) {
          size = std::stoul(serve_spec.substr(colon + 1));
        }
      } catch (const std::exception&) {
        return usage();
      }
      if (requests == 0 || size < 2) return usage();
    }

    std::vector<lp::LpProblem> burst;
    burst.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      burst.push_back(lp::random_dense_lp(
          {.rows = size, .cols = size, .seed = 700 + i}));
    }
    // One-request-at-a-time device baseline: what the burst would cost
    // without the service's scheduler (the paper's small-LP weakness).
    double baseline_seconds = 0.0;
    for (const lp::LpProblem& p : burst) {
      baseline_seconds +=
          simplex::solve(p, simplex::Engine::kDeviceRevised)
              .stats.sim_seconds;
    }

    metrics::MetricsRegistry reg;
    service::SolveService svc({}, &reg);
    std::vector<std::uint64_t> ids;
    std::size_t accepted = 0;
    for (const lp::LpProblem& p : burst) {
      service::SolveRequest req;
      req.problem = p;
      const service::Ticket t = svc.submit(std::move(req));
      if (t.accepted) {
        ++accepted;
        ids.push_back(t.id);
      }
    }
    svc.drain();

    std::vector<double> latencies;
    double makespan = 0.0;
    bool all_optimal = true;
    for (const std::uint64_t id : ids) {
      const service::ServiceResult& r = svc.result(id);
      all_optimal = all_optimal && r.solve.optimal();
      latencies.push_back(r.latency_seconds);
      makespan = std::max(makespan, r.latency_seconds);
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 = metrics::quantile_sorted(latencies, 0.50);
    const double p99 = metrics::quantile_sorted(latencies, 0.99);

    std::cout << "serve-bench: " << requests << " same-shape requests, "
              << "dense m=" << size << " (crossover_m="
              << svc.policy().crossover_m << ", batch_target="
              << svc.policy().batch_target << ")\n"
              << "  accepted " << accepted << "/" << requests
              << ", dispatched: "
              << std::size_t(reg.counter("service.dispatch.batch").value())
              << " batch / "
              << std::size_t(reg.counter("service.dispatch.host").value())
              << " host / "
              << std::size_t(reg.counter("service.dispatch.device").value())
              << " device, "
              << std::size_t(reg.counter("service.batch.rounds").value())
              << " batch round(s)\n";
    std::cout << "  modeled: service " << makespan * 1e3
              << " ms vs sequential device " << baseline_seconds * 1e3
              << " ms  ->  " << baseline_seconds / makespan << "x\n"
              << "  throughput " << double(accepted) / makespan
              << " req/s (modeled), p50 " << p50 * 1e3 << " ms, p99 "
              << p99 * 1e3 << " ms\n";

    // Warm cache: resubmitting the first request is an exact-digest hit
    // served from the memoized result, bit-identical to the cold solve.
    service::SolveRequest repeat;
    repeat.problem = burst.front();
    const service::Ticket rt = svc.submit(std::move(repeat));
    svc.drain();
    const service::ServiceResult& warm = svc.result(rt.id);
    const service::ServiceResult& cold = svc.result(ids.front());
    const bool identical = warm.solve.objective == cold.solve.objective &&
                           warm.solve.x == cold.solve.x;
    std::cout << "  warm repeat: route " << service::to_string(warm.route)
              << ", bit-identical to cold solve: "
              << (identical ? "yes" : "NO") << "\n";
    return (all_optimal && warm.route == service::Route::kWarmHit &&
            identical)
               ? 0
               : 1;
  }

  const bool generated = flags.contains("gen");
  if (path.empty() && !generated) return usage();

  try {
    // ---- Load (from file, or generate a dense random instance). ----
    lp::LpProblem problem;
    std::uint64_t gen_seed = 0;
    if (generated) {
      auto gen = parse_gen(flags["gen"], gen_seed);
      if (!gen.has_value()) return usage();
      problem = std::move(*gen);
      std::cout << "generated " << flags["gen"] << ": "
                << problem.num_variables() << " variables, "
                << problem.num_constraints() << " constraints\n";
    } else {
      const bool is_mps = path.ends_with(".mps") || path.ends_with(".MPS");
      problem = is_mps ? lp::read_mps_file(path) : lp::read_lp_file(path);
      std::cout << "loaded " << path << ": " << problem.num_variables()
                << " variables, " << problem.num_constraints()
                << " constraints, " << problem.num_nonzeros() << " nonzeros\n";
    }

    // ---- Presolve. ----
    lp::PresolveResult pre;
    if (presolve_on) {
      pre = lp::presolve(problem);
      std::cout << "presolve: " << to_string(pre.status) << ", removed "
                << pre.rows_removed << " rows / " << pre.vars_removed
                << " vars in " << pre.passes << " passes\n";
      switch (pre.status) {
        case lp::PresolveStatus::kInfeasible:
          std::cout << "status: infeasible (by presolve)\n";
          return 2;
        case lp::PresolveStatus::kUnbounded:
          std::cout << "status: unbounded (by presolve)\n";
          return 3;
        case lp::PresolveStatus::kSolved:
          std::cout << "status: optimal (solved by presolve)\nobjective: "
                    << pre.objective_offset << "\n";
          return 0;
        case lp::PresolveStatus::kReduced:
          problem = pre.reduced;
          break;
      }
    }

    // ---- Options. ----
    simplex::SolverOptions options;
    trace::ChromeTraceSink trace_sink;
    const bool trace_on = flags.contains("trace");
    if (trace_on) options.trace_sink = &trace_sink;
    vgpu::check::Checker checker;
    if (check_on) options.checker = &checker;
    vgpu::analyze::CaptureLog capture;
    if (analyze_on) {
      if (check_on) {
        std::cerr << "error: --check and --analyze are mutually exclusive "
                     "(both consume the device access stream)\n";
        return 1;
      }
      options.analyzer = &capture;
    }
    metrics::MetricsRegistry registry;
    if (metrics_on) options.metrics = &registry;
    profile::Profiler profiler;
    if (profile_on) options.profiler = &profiler;
    telemetry::Telemetry tele;
    if (telemetry_on) options.telemetry = &tele;
    record::Recorder recorder;
    const bool replay_on = !replay_path.empty();
    if (replay_on) {
      recorder =
          record::Recorder::replaying(record::Recording::read_file(replay_path));
      std::cout << "replay: loaded " << replay_path << " ("
                << recorder.reference().header.engine << ", "
                << recorder.reference().records.size() << " decisions)\n";
    }
    if (record_on || replay_on || !post_mortem_path.empty()) {
      options.recorder = &recorder;
      if (generated) recorder.set_seed(gen_seed);
    }
    if (!post_mortem_path.empty()) {
      recorder.set_post_mortem(post_mortem_path, 64);
      // Health warnings feed the dump trigger; attach the registry even
      // when --metrics was not requested (nothing is printed for it).
      if (options.metrics == nullptr) options.metrics = &registry;
    }
    if (auto it = flags.find("max-iters"); it != flags.end()) {
      options.max_iterations = static_cast<std::size_t>(std::stoul(it->second));
    }
    if (auto it = flags.find("pricing"); it != flags.end()) {
      const std::string& p = it->second;
      options.pricing = p == "dantzig" ? simplex::PricingRule::kDantzig
                        : p == "bland" ? simplex::PricingRule::kBland
                        : p == "devex" ? simplex::PricingRule::kDevex
                                       : simplex::PricingRule::kHybrid;
    }
    if (auto it = flags.find("basis"); it != flags.end()) {
      const std::string& b = it->second;
      options.basis = b == "product-form" ? simplex::BasisScheme::kProductForm
                      : b == "lu"         ? simplex::BasisScheme::kLuFactors
                                          : simplex::BasisScheme::kExplicitInverse;
    }
    vgpu::MachineModel device_model = vgpu::gtx280_model();
    if (auto it = flags.find("device"); it != flags.end()) {
      if (it->second == "gtx570") device_model = vgpu::gtx570_model();
      if (it->second == "titan") device_model = vgpu::titan_model();
    }
    options.ranging = ranging_on;
    simplex::Engine engine =
        ranging_on ? simplex::Engine::kHostRevised
                   : simplex::Engine::kDeviceRevised;
    if (auto it = flags.find("engine"); it != flags.end()) {
      const std::string& e = it->second;
      engine = e == "host"           ? simplex::Engine::kHostRevised
               : e == "dual"         ? simplex::Engine::kDualRevised
               : e == "tableau"      ? simplex::Engine::kTableau
               : e == "sparse"       ? simplex::Engine::kSparseRevised
               : e == "device-float" ? simplex::Engine::kDeviceRevisedFloat
                                     : simplex::Engine::kDeviceRevised;
    } else if (replay_on) {
      // No explicit engine: rerun on the engine the recording came from.
      const auto mapped =
          engine_from_header(recorder.reference().header.engine);
      if (!mapped.has_value()) {
        std::cerr << "error: cannot map recorded engine '"
                  << recorder.reference().header.engine
                  << "' (pass --engine explicitly)\n";
        return 1;
      }
      engine = *mapped;
    }

    // ---- Scaling (solve_standard path) or plain solve. ----
    simplex::SolveResult result;
    if (auto it = flags.find("scale"); it != flags.end()) {
      auto sf = lp::to_standard_form(problem);
      const lp::ScalingInfo info = it->second == "geometric"
                                       ? lp::scale_geometric(sf)
                                       : lp::scale_pow10(sf);
      vgpu::Device device(device_model);
      simplex::DeviceRevisedSimplex<double> solver(device, options);
      result = solver.solve_standard(sf);
      if (result.optimal()) {
        result.objective = info.unscale_objective(result.objective);
        // x was recovered in the scaled space; duals are not unscaled here.
        result.y.clear();
      }
    } else {
      result = simplex::solve(problem, engine, options, device_model);
    }

    // ---- Report. ----
    std::cout << "status: " << to_string(result.status) << "\n"
              << "iterations: " << result.stats.iterations << " (phase 1: "
              << result.stats.phase1_iterations << ")\n"
              << "modeled time: " << result.stats.sim_seconds * 1e3
              << " ms, wall: " << result.stats.wall_seconds * 1e3 << " ms\n";
    if (result.optimal()) {
      std::cout << "objective: ";
      if (presolve_on) {
        std::cout << pre.recover_objective(result.objective) << "\n";
      } else {
        std::cout << result.objective << "\n";
      }
      std::vector<double> x = result.x;
      if (presolve_on) x = pre.recover(x);
      std::cout << "solution (nonzeros):\n";
      for (std::size_t j = 0; j < x.size(); ++j) {
        if (std::abs(x[j]) > 1e-9) {
          std::cout << "  x[" << j << "] = " << x[j] << "\n";
        }
      }
      if (duals_on && !result.y.empty()) {
        std::cout << "duals:\n";
        for (std::size_t i = 0; i < result.y.size(); ++i) {
          if (std::abs(result.y[i]) > 1e-9) {
            std::cout << "  y[" << i << "] = " << result.y[i] << "\n";
          }
        }
      }
      if (ranging_on && result.ranging.has_value()) {
        const auto& rg = *result.ranging;
        std::cout << "rhs ranges (basis stays optimal):\n";
        for (std::size_t i = 0; i < rg.rhs_lower.size(); ++i) {
          std::cout << "  row " << i << ": [" << rg.rhs_lower[i] << ", "
                    << rg.rhs_upper[i] << "]\n";
        }
        std::cout << "cost ranges (solution stays optimal):\n";
        for (std::size_t j = 0; j < rg.cost_lower.size(); ++j) {
          std::cout << "  var " << j << ": [" << rg.cost_lower[j] << ", "
                    << rg.cost_upper[j] << "]\n";
        }
      }
    }
    if (stats_on) {
      std::cout << "kernel breakdown:\n";
      vgpu::print_kernel_breakdown(std::cout, result.stats.device_stats);
    }
    if (trace_on) {
      trace_sink.write_file(flags["trace"]);
      // Reconcile the trace against the end-of-solve aggregates: the
      // kernel/transfer slices must tile the simulated clock exactly
      // (OBSERVABILITY.md documents this invariant; it is also tested).
      const auto& ds = result.stats.device_stats;
      const double kernel_delta =
          std::abs(trace_sink.category_seconds("kernel") - ds.kernel_seconds);
      const double transfer_delta = std::abs(
          trace_sink.category_seconds("transfer") - ds.transfer_seconds());
      std::cout << "trace: wrote " << trace_sink.events().size()
                << " events to " << flags["trace"] << "\n"
                << "trace reconciliation vs DeviceStats: |kernel| = "
                << kernel_delta << " s, |transfer| = " << transfer_delta
                << " s\n";
      if (kernel_delta > 1e-9 || transfer_delta > 1e-9) {
        std::cerr << "error: trace does not reconcile with DeviceStats\n";
        return 1;
      }
    }
    if (profile_on) {
      const profile::ProfileReport rep = profiler.report();
      // Bit-exact reconciliation: the profiler folds the same slice
      // durations, in the same emission order, as the engine folds into
      // DeviceStats — so `==` on doubles, not a tolerance
      // (OBSERVABILITY.md, "Profiler").
      const auto& ds = result.stats.device_stats;
      bool exact = rep.kernel_seconds() == ds.kernel_seconds;
      std::size_t matched = 0;
      for (const auto& [name, krec] : ds.per_kernel) {
        const profile::KernelProfile* kp = rep.find_kernel(name);
        if (kp == nullptr || kp->seconds != krec.sim_seconds ||
            kp->calls != krec.launches) {
          exact = false;
          break;
        }
        ++matched;
      }
      if (!exact || matched != rep.kernels.size()) {
        std::cerr << "error: profile does not reconcile bit-exactly with "
                     "DeviceStats (total "
                  << rep.kernel_seconds() << " vs " << ds.kernel_seconds
                  << " s)\n";
        return 1;
      }
      std::cout << "profile: reconciled bit-exactly with DeviceStats ("
                << rep.kernels.size() << " kernels, "
                << rep.kernel_seconds() * 1e3 << " ms modeled, "
                << "launch-bound fraction " << rep.launch_bound_fraction
                << ")\n"
                << rep.table(10);
      if (!profile_path.empty()) {
        std::ofstream out(profile_path);
        out << rep.to_json();
        const std::string folded = profile_path + ".folded";
        std::ofstream fg(folded);
        fg << rep.flamegraph_text();
        std::cout << "profile: wrote " << profile_path
                  << " (gs-profile-v1) and " << folded
                  << " (collapsed stacks)\n";
      }
    }
    if (telemetry_on) {
      if (telemetry_path.empty()) {
        std::cout << tele.to_prometheus();
      } else {
        tele.write_file(telemetry_path);
        std::cout << "telemetry: wrote " << tele.series().size()
                  << " series to " << telemetry_path << "\n";
      }
    }
    if (check_on) {
      std::cout << "checked mode: " << checker.launches_checked()
                << " launches analysed (CHECKING.md)\n";
      if (!checker.clean()) {
        std::cerr << "error: kernel-safety findings\n" << checker.report();
        return 1;
      }
    }
    if (analyze_on) {
      vgpu::analyze::Report rep = vgpu::analyze::analyze(capture);
      std::cout << "analyze: " << capture.launches_captured()
                << " launches captured (CHECKING.md \"Static analysis\")\n"
                << rep.summary();
      if (!analyze_path.empty()) {
        std::ofstream out(analyze_path);
        out << rep.to_json();
        std::cout << "analyze: wrote report to " << analyze_path << "\n";
      }
      if (!rep.gate_clean()) {
        std::cerr << "error: launch-graph findings (hazards/uninit/cost "
                     "drift, or dead transfers over 1% of traffic)\n";
        return 1;
      }
    }
    if (metrics_on) {
      const metrics::MetricsSnapshot snap = registry.snapshot();
      if (snap.warnings_total > 0) {
        std::cout << "health warnings: " << snap.warnings_total << " (";
        for (std::size_t w = 0; w < snap.warnings.size() && w < 3; ++w) {
          std::cout << (w > 0 ? ", " : "") << snap.warnings[w].kind;
        }
        std::cout << (snap.warnings.size() > 3 ? ", ...)" : ")") << "\n";
      }
      if (metrics_path.empty()) {
        std::cout << snap.to_json();
      } else {
        snap.write_file(metrics_path);
        std::cout << "metrics: wrote " << snap.counters.size()
                  << " counters, " << snap.histograms.size()
                  << " histograms to " << metrics_path << "\n";
      }
    }
    if (record_on && !replay_on) {
      recorder.recording().write_file(record_path);
      std::size_t pivots = 0;
      for (const auto& r : recorder.recording().records) {
        if (r.kind == record::RecordKind::kPivot) ++pivots;
      }
      std::cout << "record: wrote " << recorder.recording().records.size()
                << " decisions (" << pivots << " pivots) to " << record_path
                << "\n";
    }
    if (!post_mortem_path.empty()) {
      if (recorder.dumped_post_mortem()) {
        std::cout << "post-mortem: dumped last-decision window to "
                  << post_mortem_path << "\n";
      } else {
        std::cout << "post-mortem: clean exit, nothing dumped\n";
      }
    }
    if (replay_on) {
      if (recorder.mismatched()) {
        std::cerr << "error: " << recorder.mismatch().describe() << "\n";
        return 1;
      }
      std::cout << "replay: verified " << recorder.verified()
                << " decisions, no mismatches\n";
    }
    return status_code(result.status);
  } catch (const gs::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
